package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

// Property: scaling every constraint by s scales the optimum by 1/s,
// and the solver's certified bracket respects that exactly (WithScale
// is used by the binary search itself, so this is a consistency check
// of the whole pipeline).
func TestQuickScaleInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 201))
		n := 2 + int(seed%3)
		as, opt := orthogonalRankOne(n, n+2, rng)
		set, err := NewDenseSet(as)
		if err != nil {
			return false
		}
		s := 0.25 + 4*rng.Float64()
		scaled := set.WithScale(s)
		sol, err := MaximizePacking(scaled, 0.15, Options{})
		if err != nil {
			return false
		}
		want := opt / s
		return sol.Lower <= want*(1+1e-6) && sol.Upper >= want*(1-1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a constraint (a new variable in the packing max) can
// only increase the optimum; removing one can only decrease it. Checked
// via certified brackets: Lower(bigger) ≥ Lower(smaller) would be too
// strong for approximations, but Upper(smaller) can never fall below
// Lower of a sub-instance witness, and any witness of the smaller
// instance extends to the larger one.
func TestMonotonicityUnderConstraintAddition(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 62))
	as, _ := orthogonalRankOne(6, 9, rng)
	small, err := NewDenseSet(as[:4])
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewDenseSet(as)
	if err != nil {
		t.Fatal(err)
	}
	solSmall, err := MaximizePacking(small, 0.1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	solBig, err := MaximizePacking(big, 0.1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The small witness padded with zeros is feasible for the big
	// instance, so OPT(big) ≥ value(small witness) must be reflected by
	// the big bracket's upper bound.
	if solBig.Upper < solSmall.Value*(1-1e-9) {
		t.Fatalf("upper bound of superset instance (%v) fell below a subset witness value (%v)",
			solBig.Upper, solSmall.Value)
	}
	padded := make([]float64, 6)
	copy(padded, solSmall.X[:4])
	cert, err := VerifyDual(big, padded, 1e-8)
	if err != nil || !cert.Feasible {
		t.Fatalf("padded subset witness not feasible in superset: %+v %v", cert, err)
	}
}

// Property: duplicating a constraint never changes the optimum (the
// duplicate's weight can always be folded into the original).
func TestDuplicateConstraintInvariance(t *testing.T) {
	rng := rand.New(rand.NewPCG(63, 64))
	as, opt := orthogonalRankOne(4, 6, rng)
	dup := append(append([]*matrix.Dense{}, as...), as[0])
	set, err := NewDenseSet(dup)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := MaximizePacking(set, 0.1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Lower > opt*(1+1e-6) || sol.Upper < opt*(1-1e-6) {
		t.Fatalf("duplicate changed the optimum: [%v, %v] vs %v", sol.Lower, sol.Upper, opt)
	}
}

// Property: the decision result's Lower and Upper are internally
// consistent (Lower ≤ Upper) across random instances, scales, and both
// oracle paths.
func TestQuickBoundsOrdered(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 202))
		n := 2 + int(seed%3)
		as, opt := orthogonalRankOne(n, n+2, rng)
		set, err := NewDenseSet(as)
		if err != nil {
			return false
		}
		theta := opt * (0.4 + 1.2*rng.Float64())
		dr, err := DecisionPSDP(set.WithScale(theta), 0.25, Options{Seed: seed})
		if err != nil {
			return false
		}
		return dr.Lower <= dr.Upper*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyPrimalDense(t *testing.T) {
	// Covering witness for A₁ = diag(2, 0), A₂ = diag(0, 2):
	// Y = I/2 has Tr 1 and Aᵢ•Y = 1 → UpperBound = 1.
	set, err := NewDenseSet([]*matrix.Dense{
		matrix.Diag([]float64{2, 0}),
		matrix.Diag([]float64{0, 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	y := matrix.Diag([]float64{0.5, 0.5})
	cert, err := VerifyPrimalDense(set, y)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.PSD || math.Abs(cert.Trace-1) > 1e-12 || math.Abs(cert.MinDot-1) > 1e-12 {
		t.Fatalf("certificate wrong: %+v", cert)
	}
	if math.Abs(cert.UpperBound-1) > 1e-12 {
		t.Fatalf("upper bound %v want 1", cert.UpperBound)
	}
	// And indeed the packing optimum is 1 (x₁ = x₂ = 1/2 saturates).
	sol, err := MaximizePacking(set, 0.05, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Lower > 1+1e-9 || sol.Upper < 1-1e-9 {
		t.Fatalf("OPT bracket [%v, %v] disagrees with primal certificate", sol.Lower, sol.Upper)
	}
}

func TestVerifyPrimalDenseRejectsBadShapes(t *testing.T) {
	set, _ := NewDenseSet([]*matrix.Dense{matrix.Identity(2)})
	if _, err := VerifyPrimalDense(set, matrix.Identity(3)); err == nil {
		t.Fatal("wrong-shape Y accepted")
	}
	// Indefinite Y flagged.
	y := matrix.Diag([]float64{1, -0.5})
	cert, err := VerifyPrimalDense(set, y)
	if err != nil {
		t.Fatal(err)
	}
	if cert.PSD {
		t.Fatal("indefinite Y reported PSD")
	}
}

func TestMaximizeTracksPrimalMatrix(t *testing.T) {
	rng := rand.New(rand.NewPCG(65, 66))
	as, _ := orthogonalRankOne(4, 6, rng)
	set, err := NewDenseSet(as)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := MaximizePacking(set, 0.1, Options{TrackPrimalMatrix: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Y == nil {
		t.Skip("no primal-certifying decision call tracked Y on this instance")
	}
	// The tracked Y is a covering witness for the scaled instance: its
	// weak-duality bound must be consistent with the final bracket.
	scaled := set.WithScale(sol.YScale).(*DenseSet)
	cert, err := VerifyPrimalDense(scaled, sol.Y)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.PSD || math.Abs(cert.Trace-1) > 1e-6 {
		t.Fatalf("tracked Y malformed: %+v", cert)
	}
	implied := sol.YScale * cert.UpperBound
	if implied < sol.Lower*(1-1e-6) {
		t.Fatalf("tracked primal bound %v below certified lower %v", implied, sol.Lower)
	}
}

func TestVerifyDualRejectsBadVectors(t *testing.T) {
	set, _ := NewDenseSet([]*matrix.Dense{matrix.Identity(2)})
	if _, err := VerifyDual(set, []float64{1, 2}, 0); err == nil {
		t.Fatal("wrong-length x accepted")
	}
	if _, err := VerifyDual(set, []float64{-1}, 0); err == nil {
		t.Fatal("negative x accepted")
	}
	if _, err := VerifyDual(set, []float64{math.NaN()}, 0); err == nil {
		t.Fatal("NaN x accepted")
	}
}

package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/work"
)

// Params are the constants of Algorithm 3.1:
//
//	K = (1 + ln N)/ε,  α = ε/(K(1+10ε)),  R = ⌈(32/(εα))·ln N⌉,
//
// with N = max(n, m, 2) so the MMW additive term ln(dim)/ε is absorbed
// exactly as in the paper's Lemma 3.2 (the paper writes ln n for both;
// taking the max is the safe reading). R = O(ε⁻³ log² N) is Theorem
// 3.1's iteration bound.
type Params struct {
	Eps   float64
	K     float64
	Alpha float64
	R     int
	LogN  float64
}

// ParamsFor computes the paper's constants for an instance with n
// constraints of dimension m at accuracy eps.
func ParamsFor(n, m int, eps float64) (Params, error) {
	if err := guardEps(eps); err != nil {
		return Params{}, err
	}
	if n <= 0 || m <= 0 {
		return Params{}, fmt.Errorf("core: ParamsFor(%d, %d): sizes must be positive", n, m)
	}
	logN := math.Log(float64(maxInt3(n, m, 2)))
	k := (1 + logN) / eps
	alpha := eps / (k * (1 + 10*eps))
	rf := math.Ceil(32 * logN / (eps * alpha))
	// R = O(ε⁻³ log² N) overflows int for very small ε; clamp instead of
	// wrapping negative (callers cap the iteration count anyway).
	r := math.MaxInt
	if rf < float64(math.MaxInt) {
		r = int(rf)
	}
	return Params{Eps: eps, K: k, Alpha: alpha, R: r, LogN: logN}, nil
}

// OracleKind selects the per-iteration exp(Ψ)•Aᵢ primitive.
type OracleKind int

const (
	// OracleAuto picks DenseExact for *DenseSet and FactoredJL for
	// *FactoredSet.
	OracleAuto OracleKind = iota
	// OracleDenseExact uses full eigendecompositions (reference path).
	OracleDenseExact
	// OracleFactoredJL is Theorem 4.1's sketched bigDotExp (fast path).
	OracleFactoredJL
	// OracleFactoredExact applies exp(Ψ/2) to every factor column and
	// basis vector: deterministic, for cross-validation on small inputs.
	OracleFactoredExact
)

// Options configure DecisionPSDP.
type Options struct {
	// Engine selects the iteration dynamics: EngineMMW (the zero value,
	// Algorithm 3.1), EngineALO (the 1507.02259 update rule), or
	// EngineAuto (resolved per instance by ResolveEngine). Both engines
	// share the oracles, workspaces, and certificate bookkeeping, and
	// every exit certificate is verified numerically regardless of
	// engine.
	Engine EngineKind
	// Oracle selects the primitive; OracleAuto matches the set type.
	Oracle OracleKind
	// MaxIter caps iterations; 0 means the paper's R.
	MaxIter int
	// TheoryExact disables the early certificate exits, reproducing
	// Algorithm 3.1 verbatim (loop until ‖x‖₁ > K or t = R).
	TheoryExact bool
	// EarlySlack is the primal early-exit slack: stop once
	// min_i avg_t rᵢ ≥ 1 − EarlySlack. 0 means eps/2.
	EarlySlack float64
	// SketchEps is the JL accuracy for the factored oracle; 0 means 0.2.
	SketchEps float64
	// Seed drives all randomness (sketches, Lanczos starts).
	Seed uint64
	// Stats, when non-nil, accumulates analytic work/depth.
	Stats *parallel.Stats
	// Phases, when non-nil, accumulates the per-phase wall-time
	// breakdown of the run (oracle apply, expm/Lanczos primitives,
	// coordinate updates, certificate bookkeeping) — see SolveStats.
	// The struct must not be shared across concurrent runs; sequential
	// calls (MaximizePacking) accumulate into it naturally. Capture is
	// allocation-free, so the zero-alloc steady-state contract survives
	// with phases enabled.
	Phases *SolveStats
	// TrackPrimalMatrix accumulates Y = avg_t P⁽ᵗ⁾ densely (dense
	// oracle only).
	TrackPrimalMatrix bool
	// TraceCap excludes constraints with Trace(i) > TraceCap from ever
	// being updated, implementing the Tr[Aᵢ] ≤ O(n³) cap of Lemma 2.2.
	// 0 disables.
	TraceCap float64
	// Bucketed enables the dynamic-bucketing update of Wang–Mahoney–
	// Mohan–Rao (arXiv:1511.06468), which §1.1 of the paper notes is
	// applicable to this analysis: coordinates with ratio far below the
	// 1+ε threshold take geometrically larger steps, one (1+α) factor
	// per (1+ε)-bucket of headroom. All certificates remain verified
	// numerically, so the acceleration never compromises soundness.
	// Off by default (paper-faithful single-step updates).
	Bucketed bool
	// Ctx, when non-nil, is checked every iteration: cancellation stops
	// the run with the context error. Long decision runs on large
	// factored instances become interruptible services this way.
	Ctx context.Context
	// OnIteration, when non-nil, observes every iteration. Returning
	// false stops the run early with OutcomeInconclusive (the certified
	// bounds computed so far remain valid). The callback must not
	// mutate its arguments.
	OnIteration func(IterationInfo) bool
	// WarmStart, when non-nil, seeds the run's initial iterate from a
	// previous run's final DecisionState instead of the paper's cold
	// start x⁰ᵢ = 1/(n·Tr[Aᵢ]) — the incremental-solving hook for
	// drifting instances. The state passes through a feasibility guard
	// (clamp to the cold-start floor, rescale under the dual exit and
	// the starting potential envelope; see applyWarmStart) and the run
	// silently falls back to the cold start when the guard cannot
	// re-establish the paper's starting invariants;
	// DecisionResult.WarmStarted reports which happened. All exit
	// certificates are recomputed on the current instance either way.
	WarmStart *DecisionState
	// CaptureState, when true, fills DecisionResult.Final with the
	// run's end-of-run DecisionState (deep copies), making the result
	// resumable and warm-start-able. Off by default: the snapshot costs
	// three O(n) copies at finish.
	CaptureState bool
	// continueFrom restores the full run state including certificate
	// bookkeeping — the ResumeDecisionPSDP path, only valid on the
	// instance that generated the state (unexported: the public surface
	// is the Resume function, whose doc carries that contract).
	continueFrom *DecisionState
	// Workspace, when non-nil, supplies the scratch-buffer arena for
	// the run: every per-iteration temporary (oracle ratio vectors, Ψ
	// accumulators, eigendecomposition storage, sketch rows, Lanczos
	// bases) is drawn from it, so the steady-state iteration allocates
	// nothing. Nil means the call creates a private workspace. A
	// workspace is not safe for concurrent use; share it only across
	// sequential calls (MaximizePacking threads one through all of its
	// decision calls automatically).
	Workspace *work.Workspace
}

// Validate checks the option fields for out-of-range values. The zero
// Options is valid (every field has a documented default); Validate
// rejects values that would silently misbehave — negative slacks,
// sketch accuracies outside (0, 1), NaNs. DecisionPSDP calls it on
// entry.
func (o Options) Validate() error {
	if o.Engine < EngineMMW || o.Engine > EngineAuto {
		return fmt.Errorf("core: Options.Engine = %d unknown", o.Engine)
	}
	if o.Oracle < OracleAuto || o.Oracle > OracleFactoredExact {
		return fmt.Errorf("core: Options.Oracle = %d unknown", o.Oracle)
	}
	if o.MaxIter < 0 {
		return fmt.Errorf("core: Options.MaxIter = %d must be >= 0", o.MaxIter)
	}
	if math.IsNaN(o.EarlySlack) || o.EarlySlack < 0 || o.EarlySlack >= 1 {
		return fmt.Errorf("core: Options.EarlySlack = %v out of [0, 1)", o.EarlySlack)
	}
	if math.IsNaN(o.SketchEps) || o.SketchEps < 0 || o.SketchEps >= 1 {
		return fmt.Errorf("core: Options.SketchEps = %v out of [0, 1)", o.SketchEps)
	}
	if math.IsNaN(o.TraceCap) || o.TraceCap < 0 {
		return fmt.Errorf("core: Options.TraceCap = %v must be >= 0", o.TraceCap)
	}
	return nil
}

// IterationInfo is the per-iteration telemetry passed to
// Options.OnIteration. The JSON tags define the wire shape of the
// per-iteration records emitted by the trace tooling (psdptrace -json).
type IterationInfo struct {
	// T is the 1-based iteration number.
	T int `json:"t"`
	// XNorm1 is ‖x‖₁ after the update.
	XNorm1 float64 `json:"x_norm1"`
	// LambdaMax is the oracle's λ_max(Ψ) estimate before the update.
	LambdaMax float64 `json:"lambda_max"`
	// MinRatio and MaxRatio are the extremes of rᵢ this iteration.
	MinRatio float64 `json:"min_ratio"`
	MaxRatio float64 `json:"max_ratio"`
	// Updated is |B|, the number of coordinates bumped.
	Updated int `json:"updated"`
}

// Outcome labels which branch of the ε-decision problem fired.
type Outcome int

const (
	// OutcomeDual: ‖x‖₁ exceeded K; x̂ is a near-feasible dual solution
	// (packing value ≥ (1−10ε) after scaling) — "OPT ≥ 1−O(ε)".
	OutcomeDual Outcome = iota
	// OutcomePrimal: the averaged density matrix is a covering witness —
	// "OPT ≤ 1+O(ε)".
	OutcomePrimal
	// OutcomeInconclusive: the iteration cap was reached without either
	// certificate (possible only with MaxIter < R or heavy sketch noise);
	// the certified Lower/Upper bounds are still valid.
	OutcomeInconclusive
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeDual:
		return "dual"
	case OutcomePrimal:
		return "primal"
	default:
		return "inconclusive"
	}
}

// DecisionResult is the outcome of one run of Algorithm 3.1 together
// with numerically certified bounds on the packing optimum of the
// (scaled) instance.
type DecisionResult struct {
	Outcome Outcome
	// X is the raw final dual iterate of Algorithm 3.1.
	X []float64
	// DualX = X/λ_max(Ψ) is a certified feasible packing vector:
	// Σ DualXᵢ Aᵢ ≼ I up to the λ_max estimator's accuracy.
	DualX []float64
	// Lower = ‖DualX‖₁ is a certified lower bound on the packing OPT.
	Lower float64
	// Upper is a certified upper bound via weak duality against the
	// averaged density matrix (inflated by the sketch error margin on
	// the JL path).
	Upper float64
	// AvgRatios[i] = (1/T)Σₜ rᵢ⁽ᵗ⁾ — the primal covering values Aᵢ•Y̅.
	AvgRatios []float64
	// Y is the averaged density matrix (dense oracle with
	// TrackPrimalMatrix only).
	Y *matrix.Dense
	// Iterations actually executed (T).
	Iterations int
	// LambdaMaxPsi is the certified λ_max(Σ XᵢAᵢ) at exit.
	LambdaMaxPsi float64
	// MaxPsiNorm is the largest λ_max(Ψ) observed during the run;
	// Lemma 3.2 asserts it stays ≤ (1+10ε)K.
	MaxPsiNorm float64
	// WarmStarted reports whether the run actually started from
	// Options.WarmStart (false when the feasibility guard fell back to
	// the cold start, or when no warm state was supplied).
	WarmStarted bool
	// Final is the resumable end-of-run state (Options.CaptureState
	// only).
	Final *DecisionState
	// Params echoes the constants used.
	Params Params
}

// DecisionPSDP runs Algorithm 3.1 on the packing constraints in set at
// accuracy eps. It returns a result whose Lower and Upper bounds are
// always valid certificates for
//
//	Lower ≤ max{1ᵀx : Σ xᵢAᵢ ≼ I, x ≥ 0} ≤ Upper,
//
// regardless of the outcome branch. In the paper's terms, OutcomeDual
// answers the ε-decision problem with a dual solution and OutcomePrimal
// with a primal (covering) solution.
//
// Options.Engine selects the iteration dynamics (Algorithm 3.1 by
// default, the ALO update rule as a second engine); the certificate
// contract above holds identically for every engine.
func DecisionPSDP(set ConstraintSet, eps float64, opts Options) (*DecisionResult, error) {
	eng, err := newEngine(set, eps, opts)
	if err != nil {
		return nil, err
	}
	for !eng.Done() {
		if err := eng.Step(); err != nil {
			eng.abort()
			return nil, err
		}
	}
	return eng.Certify()
}

// decisionRun is the live state of one Algorithm 3.1 run, split into
// newDecisionRun/step/finish so that (a) the steady-state iteration is
// a plain method whose allocation behavior the regression tests can pin
// to zero, and (b) every buffer the loop touches is created once and
// reused — the oracle draws its own from the shared workspace.
type decisionRun struct {
	set  ConstraintSet
	opts Options
	prm  Params
	eps  float64
	// slack is the primal early-exit slack; threshold is 1+ε.
	slack, threshold float64
	maxIter          int
	orc              expOracle
	ws               *work.Workspace
	n, m             int

	// Engine identity and the two knobs by which the ALO engine reuses
	// this struct's certificate bookkeeping and finish path: the oracle
	// holds Ψ(orcX) and its λ_max estimates are multiplied by lamScale
	// to recover λ_max(Ψ(x)). MMW runs with orcX = x, lamScale = 1; ALO
	// runs with orcX = x/μ, lamScale = μ.
	engineName string
	lamScale   float64
	orcX       []float64

	x      []float64
	frozen []bool
	avg    []float64
	b      []int
	mults  []float64
	ySum   *matrix.Dense

	// Certificate tracking across iterations. Every density matrix P⁽ᵗ⁾
	// is individually a trace-1 covering witness, so min_i rᵢ⁽ᵗ⁾ yields
	// an upper bound 1/min r; likewise every iterate x⁽ᵗ⁾ scaled by
	// λ_max(Ψ⁽ᵗ⁾) is a feasible packing vector. We keep the best of
	// each seen anywhere in the run and re-certify the dual snapshot at
	// exit, which makes the reported bracket far tighter than the exit-
	// point certificates alone.
	bestMinR      float64
	bestDualRatio float64
	bestDualX     []float64
	haveDualSnap  bool

	res  *DecisionResult
	t    int
	done bool
}

// newRunBase builds the engine-independent part of a run: validation,
// the paper's constants, the oracle, and the cold-start iterate.
// Callers finish construction engine-specifically (iteration cap,
// resume/warm-start handling, oracle init).
func newRunBase(set ConstraintSet, eps float64, opts Options) (*decisionRun, error) {
	if err := guardEps(eps); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	// A request cancelled while queued must not pay for oracle setup
	// (the eigendecomposition / sketch of Ψ⁰ dominates small runs).
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: before iteration 1: %w", err)
		}
	}
	n, m := set.N(), set.Dim()
	prm, err := ParamsFor(n, m, eps)
	if err != nil {
		return nil, err
	}
	ws := opts.Workspace
	if ws == nil {
		ws = work.New()
	}
	orc, err := buildOracle(set, opts, ws)
	if err != nil {
		return nil, err
	}
	slack := opts.EarlySlack
	if slack <= 0 {
		slack = eps / 2
	}

	d := &decisionRun{
		set:       set,
		opts:      opts,
		prm:       prm,
		eps:       eps,
		slack:     slack,
		threshold: 1 + eps,
		orc:       orc,
		ws:        ws,
		n:         n,
		m:         m,
		lamScale:  1,
		x:         make([]float64, n),
		frozen:    make([]bool, n),
		avg:       make([]float64, n),
		b:         make([]int, 0, n),
		mults:     make([]float64, 0, n),
		bestDualX: make([]float64, 0, n),
		res:       &DecisionResult{Params: prm, Outcome: OutcomeInconclusive},
	}

	// Initial point x⁰ᵢ = 1/(n·Tr[Aᵢ]) (paper line 1), which guarantees
	// Ψ⁰ ≼ I (Claim 3.3). Zero-trace constraints (Aᵢ = 0) are satisfied
	// by any x and are frozen at a nominal value.
	for i := 0; i < n; i++ {
		tr := set.Trace(i)
		switch {
		case tr <= 0:
			d.x[i] = 0
			d.frozen[i] = true
		case opts.TraceCap > 0 && tr > opts.TraceCap:
			d.x[i] = 1 / (float64(n) * tr)
			d.frozen[i] = true
		default:
			d.x[i] = 1 / (float64(n) * tr)
		}
	}
	return d, nil
}

// setIterCap installs the engine's iteration budget, honoring
// Options.MaxIter within it.
func (d *decisionRun) setIterCap(cap int) {
	maxIter := d.opts.MaxIter
	if maxIter <= 0 || maxIter > cap {
		maxIter = cap
	}
	d.maxIter = maxIter
}

// installStart applies the resume/warm-start options to the cold-start
// iterate. Both engines run it after setting their engine name, so the
// per-engine state rules (restore rejects cross-engine states, warm
// start falls back cold on them) apply uniformly.
func (d *decisionRun) installStart() error {
	switch {
	case d.opts.continueFrom != nil:
		if d.opts.WarmStart != nil {
			return errors.New("core: cannot combine WarmStart with resume")
		}
		return d.restore(d.opts.continueFrom)
	case d.opts.WarmStart != nil:
		d.applyWarmStart(d.opts.WarmStart)
	}
	return nil
}

func newDecisionRun(set ConstraintSet, eps float64, opts Options) (*decisionRun, error) {
	d, err := newRunBase(set, eps, opts)
	if err != nil {
		return nil, err
	}
	d.engineName = EngineNameMMW
	d.setIterCap(d.prm.R)
	if err := d.installStart(); err != nil {
		d.orc.release()
		return nil, err
	}
	if err := d.orc.init(d.x); err != nil {
		return nil, err
	}
	d.orcX = d.x
	return d, nil
}

// Engine interface. aloRun embeds *decisionRun and overrides Step; the
// other methods are shared and branch on the engine fields where the
// engines differ (lamScale, engineName).

// Step implements Engine.
func (d *decisionRun) Step() error { return d.step() }

// Done implements Engine.
func (d *decisionRun) Done() bool { return d.done || d.t >= d.maxIter }

// Snapshot implements Engine.
func (d *decisionRun) Snapshot() *DecisionState { return d.snapshot() }

// Restore implements Engine.
func (d *decisionRun) Restore(st *DecisionState) error { return d.restore(st) }

// Certify implements Engine.
func (d *decisionRun) Certify() (*DecisionResult, error) { return d.finish() }

func (d *decisionRun) abort() { d.orc.release() }

// step runs one MMW iteration (paper lines 3–7 plus certificate
// bookkeeping). It sets d.done when a certificate fires or the observer
// stops the run. After the workspace warms up in iteration 1, a dense-
// oracle step performs zero heap allocations.
func (d *decisionRun) step() error {
	if d.opts.Ctx != nil {
		if err := d.opts.Ctx.Err(); err != nil {
			return fmt.Errorf("core: iteration %d: %w", d.t+1, err)
		}
	}
	d.t++
	ph := d.opts.Phases
	var mark time.Time
	if ph != nil {
		mark = time.Now()
	}
	r, info, err := d.orc.ratios()
	if err != nil {
		return fmt.Errorf("core: iteration %d: %w", d.t, err)
	}
	if ph != nil {
		now := time.Now()
		ph.OracleNS += now.Sub(mark).Nanoseconds()
		mark = now
	}
	if info.LambdaMax > d.res.MaxPsiNorm {
		d.res.MaxPsiNorm = info.LambdaMax
	}
	matrix.VecAXPY(d.avg, 1, r)
	if minR := matrix.VecMin(r); minR > d.bestMinR {
		d.bestMinR = minR
	}
	if lam := math.Max(info.LambdaMax, 1); lam > 0 {
		if ratio := matrix.VecSum(d.x) / lam; ratio > d.bestDualRatio {
			d.bestDualRatio = ratio
			d.bestDualX = append(d.bestDualX[:0], d.x...)
			d.haveDualSnap = true
		}
	}
	if d.opts.TrackPrimalMatrix {
		if p := d.orc.probability(); p != nil {
			if d.ySum == nil {
				d.ySum = matrix.New(d.m, d.m)
			}
			matrix.AXPY(d.ySum, 1, p)
		}
	}

	// B⁽ᵗ⁾ = {i : rᵢ ≤ 1+ε} (paper line 5), minus frozen indices.
	d.b = d.b[:0]
	d.mults = d.mults[:0]
	for i := 0; i < d.n; i++ {
		if !d.frozen[i] && r[i] <= d.threshold {
			d.b = append(d.b, i)
			steps := 1
			if d.opts.Bucketed {
				steps = bucketSteps(r[i], d.threshold, d.eps, d.prm.Alpha)
			}
			d.mults = append(d.mults, math.Pow(1+d.prm.Alpha, float64(steps)))
		}
	}
	if ph != nil {
		now := time.Now()
		ph.BookkeepNS += now.Sub(mark).Nanoseconds()
		mark = now
	}
	if len(d.b) > 0 {
		for j, i := range d.b {
			d.x[i] *= d.mults[j]
		}
		if err := d.orc.update(d.b, d.mults, d.x); err != nil {
			return err
		}
	}
	if ph != nil {
		ph.UpdateNS += time.Since(mark).Nanoseconds()
		ph.Iterations++
	}

	if d.opts.OnIteration != nil {
		cont := d.opts.OnIteration(IterationInfo{
			T:         d.t,
			XNorm1:    matrix.VecSum(d.x),
			LambdaMax: info.LambdaMax,
			MinRatio:  matrix.VecMin(r),
			MaxRatio:  matrix.VecMax(r),
			Updated:   len(d.b),
		})
		if !cont {
			d.done = true
			return nil
		}
	}

	if matrix.VecSum(d.x) > d.prm.K {
		d.res.Outcome = OutcomeDual
		d.done = true
		return nil
	}
	if !d.opts.TheoryExact {
		// Early primal exit: the running average Y̅ = (1/t)ΣP⁽ᵗ⁾ is
		// already a covering certificate once min_i Aᵢ•Y̅ ≥ 1−slack,
		// and so is any single P⁽ᵗ⁾ with min_i rᵢ ≥ 1+ε (which is
		// exactly the situation when B is empty).
		minAvg := matrix.VecMin(d.avg) / float64(d.t)
		if minAvg >= 1-d.slack {
			d.res.Outcome = OutcomePrimal
			d.done = true
			return nil
		}
		if len(d.b) == 0 && d.bestMinR >= 1 {
			d.res.Outcome = OutcomePrimal
			d.done = true
			return nil
		}
	}
	return nil
}

// finish assembles the DecisionResult with its certified bounds. It
// hands every oracle buffer back to the workspace on all exit paths,
// so a workspace shared across sequential calls (Options.Workspace,
// MaximizePacking) serves the next call without a pool miss even after
// an error.
func (d *decisionRun) finish() (*DecisionResult, error) {
	defer d.orc.release()
	set, opts, res := d.set, d.opts, d.res
	if res.Outcome == OutcomeInconclusive && opts.TheoryExact && d.t >= d.maxIter {
		switch d.engineName {
		case EngineNameALO:
			// The ALO budget exhausted without an early exit: decide by
			// the certified dual ratio the run accumulated (its analog of
			// the ‖x‖₁ > K signal below).
			if d.bestDualRatio >= aloDualExitRatio(d.eps) {
				res.Outcome = OutcomeDual
			} else {
				res.Outcome = OutcomePrimal
			}
		default:
			// Paper semantics: exhausting R iterations is the primal
			// branch (Lemma 3.6).
			if matrix.VecSum(d.x) > d.prm.K {
				res.Outcome = OutcomeDual
			} else {
				res.Outcome = OutcomePrimal
			}
		}
	}

	res.Iterations = d.t
	res.X = matrix.VecClone(d.x)
	res.AvgRatios = make([]float64, d.n)
	matrix.VecScale(res.AvgRatios, 1/float64(d.t), d.avg)
	if d.ySum != nil {
		matrix.Scale(d.ySum, 1/float64(d.t), d.ySum)
		res.Y = d.ySum
	}

	// Certified dual bound: x/λ_max(Ψ) is feasible whenever the λ_max
	// estimate is exact or an overestimate; the dense path is exact and
	// the Lanczos path converges to ~1e-12 relative, so a hair of
	// headroom makes the certificate robust. Both the final iterate and
	// the best snapshot along the run are candidates; the snapshot's
	// λ_max is recomputed at certificate grade before use.
	lam, err := d.orc.lambdaMaxPsi()
	if err != nil {
		return nil, err
	}
	// The ALO engine's oracle holds Ψ(x/μ); lamScale (= μ there, 1 for
	// MMW) maps its spectral estimates back to λ_max(Ψ(x)).
	lam *= d.lamScale
	res.LambdaMaxPsi = lam
	denom := math.Max(lam*(1+1e-9), 1)
	res.DualX = make([]float64, d.n)
	matrix.VecScale(res.DualX, 1/denom, d.x)
	res.Lower = matrix.VecSum(res.DualX)
	if d.haveDualSnap && d.bestDualRatio > res.Lower*(1+1e-12) {
		lamSnap, err := lambdaMaxPsiOf(set, d.bestDualX)
		if err != nil {
			return nil, err
		}
		dSnap := math.Max(lamSnap*(1+1e-9), 1)
		if v := matrix.VecSum(d.bestDualX) / dSnap; v > res.Lower {
			res.Lower = v
			matrix.VecScale(res.DualX, 1/dSnap, d.bestDualX)
		}
	}

	// Certified primal bound (weak duality): for any density matrix Y
	// (a single P⁽ᵗ⁾ or the running average Y̅), any feasible x' has
	// 1ᵀx' ≤ Tr[Y]/min_i Aᵢ•Y. On the JL path each ratio estimate
	// carries (1±ε_s) noise; inflate accordingly.
	minAvg := math.Max(matrix.VecMin(res.AvgRatios), d.bestMinR)
	if minAvg > 0 {
		res.Upper = sketchInflation(set, opts) / minAvg
	} else {
		res.Upper = math.Inf(1)
	}
	// On the sketched path, one deterministic evaluation of the final
	// density matrix (exp(Ψ/2) applied column-exactly) usually certifies
	// a far tighter upper bound than the inflated sketch average. Cost:
	// m ExpMV sweeps, once per decision call.
	if op, ok := set.(PsiOperator); ok && usesJL(set, opts) && op.Dim() <= exactFinalBoundDim {
		exact := newOpExactOracle(op, opts.Seed^0xbead, nil, d.ws)
		// d.orcX is the vector the run's oracle saw (x for MMW, x/μ for
		// ALO); either way exp(Ψ(orcX))/Tr is a trace-1 density matrix,
		// so its min ratio certifies an upper bound by weak duality.
		if err := exact.init(d.orcX); err == nil {
			if rExact, _, err := exact.ratios(); err == nil {
				if mr := matrix.VecMin(rExact); mr > 0 {
					if ub := (1 + 1e-6) / mr; ub < res.Upper {
						res.Upper = ub
					}
				}
			}
		}
		exact.release()
	}
	if opts.CaptureState {
		res.Final = d.snapshot()
	}
	return res, nil
}

// exactFinalBoundDim caps the dimension at which the final exact
// verification sweep (m ExpMV applications) is considered cheap.
const exactFinalBoundDim = 4096

// bucketSteps returns how many (1+α) factors a coordinate with ratio r
// may take under dynamic bucketing: one per (1+ε)-bucket of headroom
// below the threshold, capped so a single iteration never multiplies a
// coordinate by more than ~e^{1/4} (keeping the ‖x‖₁ > K overshoot of
// Claim 3.5 controlled).
func bucketSteps(r, threshold, eps, alpha float64) int {
	if r <= 0 {
		r = 1e-300
	}
	if r > threshold {
		return 1
	}
	k := 1 + int(math.Log(threshold/r)/math.Log(1+eps))
	limit := int(math.Ceil(0.25 / alpha))
	if limit < 1 {
		limit = 1
	}
	if k > limit {
		k = limit
	}
	if k < 1 {
		k = 1
	}
	return k
}

// usesJL reports whether the run used the sketched operator oracle
// (OracleAuto resolves to it for every PsiOperator representation,
// mirroring buildOracle; DenseSet does not implement the interface).
func usesJL(set ConstraintSet, opts Options) bool {
	if opts.Oracle == OracleFactoredJL {
		return true
	}
	if opts.Oracle == OracleAuto {
		_, ok := set.(PsiOperator)
		return ok
	}
	return false
}

// sketchInflation returns the multiplicative margin applied to the
// weak-duality upper bound to cover JL estimation noise: (1+εₛ)/(1−εₛ)
// on the sketched path, 1 elsewhere.
func sketchInflation(set ConstraintSet, opts Options) float64 {
	if !usesJL(set, opts) {
		return 1
	}
	es := opts.SketchEps
	if es <= 0 {
		es = 0.2
	}
	if es >= 1 {
		return math.Inf(1)
	}
	return (1 + es) / (1 - es)
}

// operatorFor returns the PsiOperator view of a set, which is what the
// operator oracles (JL and exact) accept. DenseSet does not implement
// the interface (its auto path is the eigendecomposition oracle and it
// would silently lose its exactness guarantees behind a sketched
// oracle), so the assertion alone rejects it.
func operatorFor(set ConstraintSet, kind string) (PsiOperator, error) {
	op, ok := set.(PsiOperator)
	if !ok {
		return nil, fmt.Errorf("core: %s requires a factored or sparse constraint set, got %T", kind, set)
	}
	return op, nil
}

func buildOracle(set ConstraintSet, opts Options, ws *work.Workspace) (expOracle, error) {
	switch opts.Oracle {
	case OracleAuto:
		switch s := set.(type) {
		case *DenseSet:
			o := newDenseOracle(s, opts.Stats, ws)
			o.ph = opts.Phases
			return o, nil
		case PsiOperator:
			o := newOpJLOracle(s, opts.SketchEps, opts.Seed, opts.Stats, ws)
			o.ph = opts.Phases
			return o, nil
		default:
			return nil, fmt.Errorf("core: unknown constraint set type %T", set)
		}
	case OracleDenseExact:
		s, ok := set.(*DenseSet)
		if !ok {
			return nil, errNotDense
		}
		o := newDenseOracle(s, opts.Stats, ws)
		o.ph = opts.Phases
		return o, nil
	case OracleFactoredJL:
		op, err := operatorFor(set, "OracleFactoredJL")
		if err != nil {
			return nil, err
		}
		o := newOpJLOracle(op, opts.SketchEps, opts.Seed, opts.Stats, ws)
		o.ph = opts.Phases
		return o, nil
	case OracleFactoredExact:
		op, err := operatorFor(set, "OracleFactoredExact")
		if err != nil {
			return nil, err
		}
		o := newOpExactOracle(op, opts.Seed, opts.Stats, ws)
		o.ph = opts.Phases
		return o, nil
	default:
		return nil, fmt.Errorf("core: unknown oracle kind %d", opts.Oracle)
	}
}

func maxInt3(a, b, c int) int {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

// Package core implements the paper's primary contribution: the
// width-independent parallel decision procedure for positive packing
// SDPs (Algorithm 3.1, decisionPSDP), the binary-search optimizer built
// on it (Lemma 2.2), the Appendix A normalization of general positive
// SDPs, and certificate verification for both solution branches.
//
// The normalized problem the package works with is the packing SDP
//
//	maximize 1ᵀx  subject to  Σᵢ xᵢ Aᵢ ≼ I,  x ≥ 0,
//
// whose dual is the trace-normalized covering SDP of the paper's
// Figure 2. Constraints are held either densely (DenseSet) or in the
// factored form Aᵢ = QᵢQᵢᵀ (FactoredSet) that enables the nearly-linear
// work bigDotExp oracle of Theorem 4.1.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/chol"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/sparse"
	"repro/internal/work"
)

// ErrEmptySet indicates a constraint set with no constraints.
var ErrEmptySet = errors.New("core: constraint set has no constraints")

// ConstraintSet is the read-only view of packing constraints shared by
// both representations. A global Scale() multiplier is applied to every
// constraint, which is how the Lemma 2.2 binary search rescales the
// instance without copying it.
type ConstraintSet interface {
	// N returns the number of constraints.
	N() int
	// Dim returns the matrix dimension m.
	Dim() int
	// Trace returns Tr[Aᵢ] including the scale factor.
	Trace(i int) float64
	// Scale returns the current global multiplier.
	Scale() float64
	// WithScale returns a view of the set with the scale multiplied by s.
	WithScale(s float64) ConstraintSet
	// ApplyPsi computes out = (Σᵢ xᵢAᵢ)·in (scaled).
	ApplyPsi(x, in, out []float64)
	// NNZ returns the representation size (dense: n·m², factored and
	// sparse: total stored nonzeros q).
	NNZ() int
}

// PsiOperator extends ConstraintSet with the allocation-free operator
// primitives the exponential oracles are assembled from. Any
// representation implementing it gets the full oracle pipeline for
// free — the sketched bigDotExp of Theorem 4.1 (opJLOracle) and the
// deterministic column-exact oracle (opExactOracle) are written against
// this interface alone, so factored and general-sparse constraints
// share one decision/optimize/verify code path (and a future
// representation only has to implement these primitives). DenseSet
// deliberately does NOT implement it: the dense path's contract is the
// exact eigendecomposition oracle, and keeping it off the interface
// lets the type system reject a dense set wherever a sketched oracle
// is requested.
type PsiOperator interface {
	ConstraintSet
	// PsiScratchLen is the scratch length ApplyPsiScratch requires.
	PsiScratchLen() int
	// ApplyPsiScratch is ApplyPsi with caller scratch of length
	// PsiScratchLen(): the zero-allocation Ψ·v the ExpMV and Lanczos
	// closures are built on.
	ApplyPsiScratch(x, in, out, tmp []float64)
	// ExpDots writes r[i] = Scale()·Σ_rows s_rᵀ·Aᵢ·s_r for the dense
	// row-block matrix s — the unnormalized bigDotExp numerators
	// Aᵢ • SᵀS (S = rows of s through exp(Ψ/2)). Each r[i] must be a
	// deterministic block reduction; r must not alias s.
	ExpDots(r []float64, s *matrix.Dense)
}

// DenseSet holds constraints as dense symmetric PSD matrices.
type DenseSet struct {
	A      []*matrix.Dense
	m      int
	scale  float64
	traces []float64
}

// NewDenseSet validates and wraps a list of symmetric m-by-m matrices.
// Symmetry is always checked; positive semidefiniteness is the caller's
// responsibility (use ValidatePSD for an explicit check — it costs one
// eigendecomposition per constraint).
func NewDenseSet(a []*matrix.Dense) (*DenseSet, error) {
	if len(a) == 0 {
		return nil, ErrEmptySet
	}
	m := a[0].R
	traces := make([]float64, len(a))
	for i, ai := range a {
		if ai.R != m || ai.C != m {
			return nil, fmt.Errorf("core: constraint %d is %dx%d, want %dx%d", i, ai.R, ai.C, m, m)
		}
		if ai.HasNaN() {
			return nil, fmt.Errorf("core: constraint %d contains NaN/Inf", i)
		}
		tol := 1e-8 * math.Max(1, ai.MaxAbs())
		if !ai.IsSymmetric(tol) {
			return nil, fmt.Errorf("core: constraint %d is not symmetric", i)
		}
		traces[i] = ai.Trace()
		if traces[i] < 0 {
			return nil, fmt.Errorf("core: constraint %d has negative trace %v (not PSD)", i, traces[i])
		}
	}
	return &DenseSet{A: a, m: m, scale: 1, traces: traces}, nil
}

// N returns the number of constraints.
func (s *DenseSet) N() int { return len(s.A) }

// Dim returns the matrix dimension m.
func (s *DenseSet) Dim() int { return s.m }

// Trace returns the scaled trace of constraint i.
func (s *DenseSet) Trace(i int) float64 { return s.scale * s.traces[i] }

// Scale returns the global multiplier.
func (s *DenseSet) Scale() float64 { return s.scale }

// WithScale returns a view with the scale multiplied by f.
func (s *DenseSet) WithScale(f float64) ConstraintSet {
	c := *s
	c.scale *= f
	return &c
}

// NNZ returns n·m², the dense representation size.
func (s *DenseSet) NNZ() int { return len(s.A) * s.m * s.m }

// ApplyPsi computes out = (Σᵢ xᵢAᵢ)·in with the scale applied.
func (s *DenseSet) ApplyPsi(x, in, out []float64) {
	s.applyPsiTmp(x, in, out, make([]float64, s.m))
}

// applyPsiTmp is ApplyPsi with caller scratch (length m), the
// allocation-free form the workspace-threaded oracles call.
func (s *DenseSet) applyPsiTmp(x, in, out, tmp []float64) {
	for j := range out {
		out[j] = 0
	}
	for i, ai := range s.A {
		if x[i] == 0 {
			continue
		}
		ai.MulVecTo(tmp, in)
		matrix.VecAXPY(out, s.scale*x[i], tmp)
	}
}

// PsiDense materializes Ψ = Σᵢ xᵢAᵢ (scaled) as a dense matrix with one
// blocked linear-combination pass over the entries (instead of n
// sequential AXPY sweeps).
func (s *DenseSet) PsiDense(x []float64) *matrix.Dense {
	psi := matrix.New(s.m, s.m)
	s.psiDenseInto(psi, x, make([]float64, len(x)))
	return psi
}

// psiDenseInto materializes Ψ into psi using coeffs (length n) as
// scratch: the dense oracle's periodic rebuild without allocations.
func (s *DenseSet) psiDenseInto(psi *matrix.Dense, x, coeffs []float64) {
	matrix.VecScale(coeffs, s.scale, x)
	matrix.LinComb(psi, coeffs, s.A)
}

// ValidatePSD checks every constraint for positive semidefiniteness via
// pivoted Cholesky (errors identify the offending index). One workspace
// serves the whole batch, so the per-pivot column scratch is allocated
// once, not once per constraint.
func (s *DenseSet) ValidatePSD(tol float64) error {
	ws := work.New()
	for i, ai := range s.A {
		if _, _, err := chol.PivotedCholeskyWS(ws, ai, tol); err != nil {
			return fmt.Errorf("core: constraint %d: %w", i, err)
		}
	}
	return nil
}

// Factorize converts the set to factored form Aᵢ = QᵢQᵢᵀ using pivoted
// Cholesky — the preprocessing step the paper prescribes for input not
// already given prefactored. The current scale is baked into the
// factors.
func (s *DenseSet) Factorize(tol float64) (*FactoredSet, error) {
	qs := make([]*sparse.CSC, len(s.A))
	ws := work.New()
	for i, ai := range s.A {
		q, _, err := chol.PivotedCholeskyWS(ws, ai, tol)
		if err != nil {
			return nil, fmt.Errorf("core: factorizing constraint %d: %w", i, err)
		}
		qq := sparse.CSCFromDense(q, 0)
		if s.scale != 1 {
			qq = qq.Scale(math.Sqrt(s.scale))
		}
		qs[i] = qq
	}
	return NewFactoredSet(qs)
}

// FactoredSet holds constraints in factored form Aᵢ = QᵢQᵢᵀ with sparse
// factors — the representation of Theorem 4.1 whose total nonzero count
// q drives the nearly-linear work bound.
type FactoredSet struct {
	Q      []*sparse.CSC
	m      int
	scale  float64
	traces []float64
	nnz    int
	// Flattened view: all factor columns concatenated, with col2con
	// mapping each flat column to its constraint. Ψ·v is then two O(q)
	// sparse passes.
	flat    *sparse.CSC
	col2con []int
}

// NewFactoredSet validates and wraps the factors. All Qᵢ must share the
// row dimension m.
func NewFactoredSet(q []*sparse.CSC) (*FactoredSet, error) {
	if len(q) == 0 {
		return nil, ErrEmptySet
	}
	m := q[0].R
	traces := make([]float64, len(q))
	nnz := 0
	var trips []sparse.Triplet
	var col2con []int
	colBase := 0
	for i, qi := range q {
		if qi.R != m {
			return nil, fmt.Errorf("core: factor %d has %d rows, want %d", i, qi.R, m)
		}
		traces[i] = qi.GramTrace()
		nnz += qi.NNZ()
		for j := 0; j < qi.C; j++ {
			for k := qi.ColPtr[j]; k < qi.ColPtr[j+1]; k++ {
				trips = append(trips, sparse.Triplet{Row: qi.Row[k], Col: colBase + j, Val: qi.Val[k]})
			}
			col2con = append(col2con, i)
		}
		colBase += qi.C
	}
	flat, err := sparse.NewCSC(m, max(colBase, 1), trips)
	if err != nil {
		return nil, err
	}
	return &FactoredSet{Q: q, m: m, scale: 1, traces: traces, nnz: nnz, flat: flat, col2con: col2con}, nil
}

// N returns the number of constraints.
func (s *FactoredSet) N() int { return len(s.Q) }

// Dim returns the matrix dimension m.
func (s *FactoredSet) Dim() int { return s.m }

// Trace returns the scaled trace Tr[Aᵢ] = scale·‖Qᵢ‖_F².
func (s *FactoredSet) Trace(i int) float64 { return s.scale * s.traces[i] }

// Scale returns the global multiplier.
func (s *FactoredSet) Scale() float64 { return s.scale }

// WithScale returns a view with the scale multiplied by f.
func (s *FactoredSet) WithScale(f float64) ConstraintSet {
	c := *s
	c.scale *= f
	return &c
}

// NNZ returns q, the total nonzeros across factors.
func (s *FactoredSet) NNZ() int { return s.nnz }

// ApplyPsi computes out = (Σᵢ xᵢ QᵢQᵢᵀ)·in (scaled) in O(q) work via the
// flattened factor matrix.
func (s *FactoredSet) ApplyPsi(x, in, out []float64) {
	s.applyPsiTmp(x, in, out, make([]float64, s.flat.C))
}

// applyPsiTmp is ApplyPsi with caller scratch of length psiScratchLen():
// the per-column products Qᵀin land in tmp, so the O(q) matvec at the
// heart of every ExpMV term allocates nothing.
func (s *FactoredSet) applyPsiTmp(x, in, out, tmp []float64) {
	s.flat.TMulVecInto(tmp, in) // Qᵀin per flat column
	for c := range tmp {
		tmp[c] *= s.scale * x[s.col2con[c]]
	}
	for j := range out {
		out[j] = 0
	}
	s.flat.MulVecAdd(out, 1, tmp)
}

// psiScratchLen is the scratch length applyPsiTmp requires.
func (s *FactoredSet) psiScratchLen() int { return s.flat.C }

// PsiScratchLen is the scratch length ApplyPsiScratch requires.
func (s *FactoredSet) PsiScratchLen() int { return s.psiScratchLen() }

// ApplyPsiScratch is ApplyPsi with caller scratch: the zero-allocation
// Ψ·v of the operator oracles.
func (s *FactoredSet) ApplyPsiScratch(x, in, out, tmp []float64) {
	s.applyPsiTmp(x, in, out, tmp)
}

// ExpDots implements PsiOperator: with Aᵢ = QᵢQᵢᵀ,
// Σ_rows s_rᵀ·Aᵢ·s_r = ‖S·Qᵢ‖_F², each constraint one O(k·nnz(Qᵢ))
// sketch dot (Theorem 4.1's per-constraint cost).
func (s *FactoredSet) ExpDots(r []float64, sk *matrix.Dense) {
	if parallel.SerialBlock(len(s.Q), 1) {
		for i := range s.Q {
			r[i] = s.scale * s.Q[i].SketchDot(sk)
		}
		return
	}
	parallel.ForBlock(len(s.Q), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r[i] = s.scale * s.Q[i].SketchDot(sk)
		}
	})
}

// Densify materializes each constraint as a dense matrix (with the
// current scale folded in): the bridge from the fast path back to the
// exact reference path.
func (s *FactoredSet) Densify() (*DenseSet, error) {
	as := make([]*matrix.Dense, len(s.Q))
	for i, qi := range s.Q {
		d := qi.GramDense()
		if s.scale != 1 {
			matrix.Scale(d, s.scale, d)
		}
		as[i] = d
	}
	return NewDenseSet(as)
}

package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/eigen"
	"repro/internal/expm"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/work"
)

// expOracle abstracts the per-iteration primitive of Algorithm 3.1:
// given the current dual vector x (maintained by the solver), produce
// the ratios
//
//	rᵢ = (exp(Ψ) • Aᵢ) / Tr[exp(Ψ)] = Aᵢ • P,   Ψ = Σᵢ xᵢAᵢ,
//
// which the solver thresholds against 1+ε. The two implementations are
// the exact eigendecomposition oracle (dense path) and the JL-sketched
// Taylor oracle realizing Theorem 4.1's bigDotExp (factored path).
//
// Oracles own their iteration state: every buffer the per-iteration
// path touches is drawn from the run's work.Workspace (or retained
// across iterations), so ratios/update allocate nothing in steady
// state. The ratio slice returned by ratios aliases oracle storage and
// is only valid until the next ratios call.
type expOracle interface {
	// init installs the starting dual vector.
	init(x []float64) error
	// update informs the oracle that x[b[j]] was multiplied by mults[j]
	// (each > 1); x is the post-update vector.
	update(b []int, mults []float64, x []float64) error
	// ratios returns rᵢ for all i plus spectral side information.
	ratios() ([]float64, oracleInfo, error)
	// lambdaMaxPsi returns a high-accuracy estimate of λ_max(Ψ) for the
	// current x (used for certificates, so it must be trustworthy).
	lambdaMaxPsi() (float64, error)
	// probability returns the dense density matrix P from the most
	// recent ratios() call, or nil if the representation does not
	// materialize it (factored path).
	probability() *matrix.Dense
	// release returns every workspace buffer the oracle holds to the
	// pools; the oracle must not be used afterwards. The decision run
	// calls it at finish so a workspace shared across sequential calls
	// serves every call after the first without a single pool miss.
	release()
}

// oracleInfo carries per-iteration spectral byproducts.
type oracleInfo struct {
	// LambdaMax is the oracle's running estimate of λ_max(Ψ) — exact on
	// the dense path, a converged Lanczos value on the factored path.
	LambdaMax float64
	// LogTrW is log Tr[exp(Ψ)], tracked in log-space.
	LogTrW float64
}

// denseOracle evaluates the primitive exactly via eigendecomposition:
// the reference implementation of the paper's per-iteration step.
// Ψ is maintained incrementally (update adds Σ δᵢAᵢ) with periodic
// rebuilds to cancel floating-point drift. All per-iteration storage
// (Ψ, the density matrix, the eigendecomposition, the ratio vector) is
// preallocated at init, so the steady-state iteration is allocation-
// free — the property the internal/core allocation-regression tests
// pin down.
type denseOracle struct {
	set *DenseSet
	ws  *work.Workspace
	x   []float64
	psi *matrix.Dense
	p   *matrix.Dense // last density matrix
	r   []float64     // ratio buffer returned by ratios
	// coeffs is the scaled-x scratch of the periodic Ψ rebuild.
	coeffs []float64
	dec    eigen.Decomposition
	// updatesSinceRebuild triggers a fresh Ψ = Σ xᵢAᵢ rebuild.
	updatesSinceRebuild int
	st                  *parallel.Stats
	// ph, when non-nil, accumulates the expm/eigendecomposition share of
	// the oracle's time (SolveStats.ExpmNS).
	ph *SolveStats
}

const denseRebuildPeriod = 256

func newDenseOracle(set *DenseSet, st *parallel.Stats, ws *work.Workspace) *denseOracle {
	return &denseOracle{set: set, st: st, ws: ws}
}

func (o *denseOracle) init(x []float64) error {
	if len(x) != o.set.N() {
		return fmt.Errorf("core: dense oracle: x has %d entries, want %d", len(x), o.set.N())
	}
	o.x = x
	m := o.set.m
	if o.psi == nil {
		o.psi = o.ws.Mat(m, m)
		o.p = o.ws.Mat(m, m)
		o.r = o.ws.Vec(o.set.N())
		o.coeffs = o.ws.Vec(o.set.N())
	}
	o.rebuild()
	return nil
}

func (o *denseOracle) rebuild() {
	o.set.psiDenseInto(o.psi, o.x, o.coeffs)
	o.updatesSinceRebuild = 0
}

func (o *denseOracle) update(b []int, mults []float64, x []float64) error {
	o.x = x
	o.updatesSinceRebuild++
	if o.updatesSinceRebuild >= denseRebuildPeriod {
		o.rebuild()
		return nil
	}
	// δᵢ = x_newᵢ − x_oldᵢ = x_newᵢ·(1 − 1/multᵢ).
	for j, i := range b {
		f := 1 - 1/mults[j]
		matrix.AXPY(o.psi, o.set.scale*x[i]*f, o.set.A[i])
	}
	o.st.Add(int64(len(b))*int64(o.set.m)*int64(o.set.m), parallel.Log2(len(b)+1))
	return nil
}

func (o *denseOracle) ratios() ([]float64, oracleInfo, error) {
	var mark time.Time
	if o.ph != nil {
		mark = time.Now()
	}
	lmax, logTr, err := expm.NormalizedExpSymInto(o.ws, o.psi, &o.dec, o.p)
	if err != nil {
		return nil, oracleInfo{}, err
	}
	if o.ph != nil {
		o.ph.ExpmNS += time.Since(mark).Nanoseconds()
	}
	n := o.set.N()
	m := o.set.m
	matrix.DotMany(o.r, o.set.A, o.set.scale, o.p)
	// Analytic cost: one m³ eigendecomposition + n·m² dot products.
	o.st.Add(int64(9)*int64(m)*int64(m)*int64(m)+int64(2*n)*int64(m)*int64(m),
		int64(m)*parallel.Log2(m))
	return o.r, oracleInfo{LambdaMax: lmax, LogTrW: logTr}, nil
}

func (o *denseOracle) lambdaMaxPsi() (float64, error) {
	// Fresh rebuild for certificate-grade accuracy.
	o.rebuild()
	return eigen.LambdaMax(o.psi)
}

func (o *denseOracle) probability() *matrix.Dense { return o.p }

func (o *denseOracle) release() {
	if o.psi == nil {
		return
	}
	o.ws.PutMat(o.psi)
	o.ws.PutMat(o.p)
	o.ws.PutVec(o.r)
	o.ws.PutVec(o.coeffs)
	o.psi, o.p, o.r, o.coeffs = nil, nil, nil, nil
	if o.dec.Vectors != nil {
		o.ws.PutMat(o.dec.Vectors)
		o.ws.PutVec(o.dec.Values)
		o.dec = eigen.Decomposition{}
	}
}

// errNotDense is returned when a dense-only feature is requested from a
// factored run.
var errNotDense = errors.New("core: operation requires the dense oracle")

// guardEps validates the accuracy parameter shared by all entry points.
func guardEps(eps float64) error {
	if math.IsNaN(eps) || eps <= 0 || eps >= 1 {
		return fmt.Errorf("core: eps = %v out of (0, 1)", eps)
	}
	return nil
}

// Package parallel provides the fork-join primitives used by every
// numerical kernel in this repository, together with an analytic
// work/depth accounting facility that mirrors the PRAM-style cost model
// of Peng–Tangwongsan–Zhang (SPAA 2012).
//
// All reductions use fixed block decompositions so that results are
// bit-for-bit deterministic regardless of GOMAXPROCS or goroutine
// scheduling: a block count is chosen from the problem size alone, each
// block is summed sequentially, and the per-block partial results are
// combined in block order.
package parallel

import (
	"runtime"
	"sync"
)

// minGrain is the smallest amount of per-goroutine work worth forking for.
// Below this, loops run sequentially; goroutine startup would dominate.
const minGrain = 1024

// Workers reports the number of worker goroutines fork-join operations
// will use, which is GOMAXPROCS at call time.
func Workers() int {
	return runtime.GOMAXPROCS(0)
}

// SerialBlock reports whether ForBlock(n, grain, body) would execute
// body in a single sequential call. Hot kernels test this BEFORE
// constructing their loop closure: a closure passed to ForBlock escapes
// to the heap (it may flow into a goroutine), so the steady-state
// zero-allocation paths branch to a plain loop first and only build the
// closure when forking is actually possible. The plain loop computes
// exactly what the single body(0, n) call would, so results are
// bit-for-bit unchanged.
func SerialBlock(n, grain int) bool {
	if grain <= 0 {
		grain = minGrain
	}
	return n <= grain || Workers() == 1
}

// OneBlock reports whether a deterministic block reduction of size n at
// this grain collapses to a single block, in which case the sequential
// sum over [0, n) is bit-identical to the block tree and reduction
// kernels may skip closure construction entirely (see SerialBlock).
// Unlike SerialBlock it must not depend on Workers(): with more than
// one block the combine order matters and callers have to go through
// the fixed block tree even at GOMAXPROCS=1.
func OneBlock(n, grain int) bool {
	if grain <= 0 {
		grain = minGrain
	}
	return n <= grain
}

// For runs body(i) for every i in [0, n), potentially in parallel.
// body must be safe to call concurrently for distinct i.
func For(n int, body func(i int)) {
	ForBlock(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForBlock partitions [0, n) into contiguous blocks and runs body(lo, hi)
// on each block, potentially in parallel. grain is the minimum block
// size; if grain <= 0 a default is chosen. body must be safe to call
// concurrently for disjoint ranges.
func ForBlock(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = minGrain
	}
	workers := Workers()
	if workers == 1 || n <= grain {
		body(0, n)
		return
	}
	blocks := (n + grain - 1) / grain
	if blocks > workers*4 {
		blocks = workers * 4
	}
	if blocks < 2 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(blocks)
	for b := 0; b < blocks; b++ {
		lo := b * n / blocks
		hi := (b + 1) * n / blocks
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Do runs each function concurrently and waits for all of them.
func Do(fs ...func()) {
	if len(fs) == 0 {
		return
	}
	if len(fs) == 1 {
		fs[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fs) - 1)
	for _, f := range fs[1:] {
		go func(f func()) {
			defer wg.Done()
			f()
		}(f)
	}
	fs[0]()
	wg.Wait()
}

// BlockCount reports the deterministic number of reduction blocks
// SumBlocks would use for a problem of size n at the given grain.
// Zero-allocation reduction kernels replicate the block tree with a
// plain loop when forking is impossible: summing block b over
// [b·n/blocks, (b+1)·n/blocks) sequentially and combining partials in
// block order is bit-identical to the forked reduction, without the
// heap-escaping closure a SumBlocks call would construct.
func BlockCount(n, grain int) int { return blockCount(n, grain) }

// blockCount returns the deterministic number of reduction blocks for a
// problem of size n with the given grain. It depends only on n and
// grain, never on GOMAXPROCS, so reduction trees are reproducible.
func blockCount(n, grain int) int {
	if grain <= 0 {
		grain = minGrain
	}
	blocks := (n + grain - 1) / grain
	const maxBlocks = 64
	if blocks > maxBlocks {
		blocks = maxBlocks
	}
	if blocks < 1 {
		blocks = 1
	}
	return blocks
}

// SumFloat computes the sum over i in [0, n) of f(i) using a
// deterministic block reduction. The result is identical for any
// GOMAXPROCS setting.
func SumFloat(n int, f func(i int) float64) float64 {
	return SumBlocks(n, 0, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		return s
	})
}

// SumBlocks computes the sum of block(lo, hi) over a deterministic block
// decomposition of [0, n). block must return the sequential sum of its
// range. Blocks may execute concurrently; partial sums are combined in
// block order, so the result is deterministic.
func SumBlocks(n, grain int, block func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	blocks := blockCount(n, grain)
	if blocks == 1 {
		return block(0, n)
	}
	if Workers() == 1 {
		// Same block decomposition, same combine order — bit-identical to
		// the forked path — without goroutine overhead.
		var s float64
		for b := 0; b < blocks; b++ {
			s += block(b*n/blocks, (b+1)*n/blocks)
		}
		return s
	}
	partial := make([]float64, blocks)
	var wg sync.WaitGroup
	wg.Add(blocks)
	for b := 0; b < blocks; b++ {
		lo := b * n / blocks
		hi := (b + 1) * n / blocks
		go func(b, lo, hi int) {
			defer wg.Done()
			partial[b] = block(lo, hi)
		}(b, lo, hi)
	}
	wg.Wait()
	var s float64
	for _, p := range partial {
		s += p
	}
	return s
}

// MaxFloat computes max over i in [0, n) of f(i). n must be >= 1.
// Deterministic under any GOMAXPROCS.
func MaxFloat(n int, f func(i int) float64) float64 {
	blocks := blockCount(n, 0)
	if blocks == 1 {
		m := f(0)
		for i := 1; i < n; i++ {
			if v := f(i); v > m {
				m = v
			}
		}
		return m
	}
	if Workers() == 1 {
		// Replay the identical block decomposition sequentially (same
		// per-block seeds, same combine order) so results — including
		// NaN propagation — match the forked path bit for bit.
		var m float64
		for b := 0; b < blocks; b++ {
			lo, hi := b*n/blocks, (b+1)*n/blocks
			p := f(lo)
			for i := lo + 1; i < hi; i++ {
				if v := f(i); v > p {
					p = v
				}
			}
			if b == 0 || p > m {
				m = p
			}
		}
		return m
	}
	partial := make([]float64, blocks)
	var wg sync.WaitGroup
	wg.Add(blocks)
	for b := 0; b < blocks; b++ {
		lo := b * n / blocks
		hi := (b + 1) * n / blocks
		go func(b, lo, hi int) {
			defer wg.Done()
			m := f(lo)
			for i := lo + 1; i < hi; i++ {
				if v := f(i); v > m {
					m = v
				}
			}
			partial[b] = m
		}(b, lo, hi)
	}
	wg.Wait()
	m := partial[0]
	for _, p := range partial[1:] {
		if p > m {
			m = p
		}
	}
	return m
}

package parallel

import "sync/atomic"

// Stats accumulates analytic work and depth in the fork-join cost model
// used by the paper (work = total operations, depth = longest chain of
// dependent operations). Kernels report their analytic costs here; the
// counters are not a profiler, they implement the paper's cost model on
// the actual execution so that Corollary 1.2's Õ(n+m+q) work and polylog
// depth claims can be measured (experiment E7).
//
// Convention: only "primitive" kernels invoked from a sequential driver
// record costs (matrix multiply, SpMV, eigendecomposition, one Taylor
// application, ...). Composite routines do not add on top of the
// primitives they call, so nothing is double counted.
//
// The zero value is a valid, enabled recorder. A nil *Stats is a valid
// no-op recorder, so hot paths can call methods unconditionally.
type Stats struct {
	work  atomic.Int64
	depth atomic.Int64
}

// AddWork records w units of work (roughly, floating point operations).
func (s *Stats) AddWork(w int64) {
	if s == nil {
		return
	}
	s.work.Add(w)
}

// AddDepth records d units of critical-path length. Callers invoke this
// once per sequential step of a driver loop, with d the analytic depth
// of the parallel kernel executed in that step.
func (s *Stats) AddDepth(d int64) {
	if s == nil {
		return
	}
	s.depth.Add(d)
}

// Add records work and depth together.
func (s *Stats) Add(w, d int64) {
	if s == nil {
		return
	}
	s.work.Add(w)
	s.depth.Add(d)
}

// Work returns the accumulated work.
func (s *Stats) Work() int64 {
	if s == nil {
		return 0
	}
	return s.work.Load()
}

// Depth returns the accumulated depth.
func (s *Stats) Depth() int64 {
	if s == nil {
		return 0
	}
	return s.depth.Load()
}

// Reset zeroes both counters.
func (s *Stats) Reset() {
	if s == nil {
		return
	}
	s.work.Store(0)
	s.depth.Store(0)
}

// Log2 returns ceil(log2(n)) for n >= 1, the analytic depth of a
// balanced reduction tree over n leaves. Log2(0) and Log2(1) are 0.
func Log2(n int) int64 {
	if n <= 1 {
		return 0
	}
	d := int64(0)
	for v := n - 1; v > 0; v >>= 1 {
		d++
	}
	return d
}

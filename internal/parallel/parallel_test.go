package parallel

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 5000, 100000} {
		seen := make([]atomic.Int32, max(n, 1))
		For(n, func(i int) { seen[i].Add(1) })
		for i := 0; i < n; i++ {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d visited %d times, want 1", n, i, got)
			}
		}
	}
}

func TestForBlockDisjointCover(t *testing.T) {
	for _, n := range []int{1, 3, 1024, 4097, 65536} {
		var total atomic.Int64
		ForBlock(n, 16, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad block [%d,%d) for n=%d", lo, hi, n)
			}
			total.Add(int64(hi - lo))
		})
		if total.Load() != int64(n) {
			t.Fatalf("n=%d: covered %d elements", n, total.Load())
		}
	}
}

func TestForBlockZeroAndNegative(t *testing.T) {
	called := false
	ForBlock(0, 0, func(lo, hi int) { called = true })
	ForBlock(-5, 0, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for empty range")
	}
}

func TestDo(t *testing.T) {
	Do() // no-op
	var a, b, c atomic.Int32
	Do(func() { a.Store(1) }, func() { b.Store(2) }, func() { c.Store(3) })
	if a.Load() != 1 || b.Load() != 2 || c.Load() != 3 {
		t.Fatal("Do did not run all functions")
	}
}

func TestSumFloatMatchesSequential(t *testing.T) {
	for _, n := range []int{0, 1, 10, 1023, 1024, 1025, 100000} {
		got := SumFloat(n, func(i int) float64 { return float64(i) })
		want := float64(n) * float64(n-1) / 2
		if n == 0 {
			want = 0
		}
		if got != want {
			t.Fatalf("n=%d: SumFloat=%v want %v", n, got, want)
		}
	}
}

// SumFloat must be bit-identical regardless of GOMAXPROCS because the
// block decomposition is fixed by n alone.
func TestSumFloatDeterministicAcrossWorkers(t *testing.T) {
	n := 200000
	f := func(i int) float64 { return math.Sin(float64(i)) * 1e-3 }
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	runtime.GOMAXPROCS(1)
	s1 := SumFloat(n, f)
	runtime.GOMAXPROCS(max(old, 4))
	s2 := SumFloat(n, f)
	if s1 != s2 {
		t.Fatalf("nondeterministic sum: %v vs %v", s1, s2)
	}
}

func TestMaxFloat(t *testing.T) {
	for _, n := range []int{1, 2, 100, 65536} {
		got := MaxFloat(n, func(i int) float64 { return -math.Abs(float64(i) - float64(n)/3) })
		want := math.Inf(-1)
		for i := 0; i < n; i++ {
			v := -math.Abs(float64(i) - float64(n)/3)
			if v > want {
				want = v
			}
		}
		if got != want {
			t.Fatalf("n=%d: MaxFloat=%v want %v", n, got, want)
		}
	}
}

func TestMaxFloatNegativeValues(t *testing.T) {
	vals := []float64{-5, -3, -8, -1, -9}
	got := MaxFloat(len(vals), func(i int) float64 { return vals[i] })
	if got != -1 {
		t.Fatalf("MaxFloat=%v want -1", got)
	}
}

func TestSumBlocksGrain(t *testing.T) {
	n := 10000
	got := SumBlocks(n, 100, func(lo, hi int) float64 {
		return float64(hi - lo)
	})
	if got != float64(n) {
		t.Fatalf("SumBlocks=%v want %v", got, float64(n))
	}
}

func TestQuickSumMatchesSequential(t *testing.T) {
	f := func(vals []float64) bool {
		// Exact equality: deterministic block tree vs the same block
		// tree computed by hand.
		n := len(vals)
		got := SumFloat(n, func(i int) float64 { return vals[i] })
		blocks := blockCount(n, 0)
		var want float64
		for b := 0; b < blocks; b++ {
			lo, hi := b*n/blocks, (b+1)*n/blocks
			var p float64
			for i := lo; i < hi; i++ {
				p += vals[i]
			}
			want += p
		}
		if n == 0 {
			want = 0
		}
		return got == want || (math.IsNaN(got) && math.IsNaN(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	var s Stats
	s.AddWork(10)
	s.AddDepth(3)
	s.Add(5, 2)
	if s.Work() != 15 || s.Depth() != 5 {
		t.Fatalf("work=%d depth=%d, want 15, 5", s.Work(), s.Depth())
	}
	s.Reset()
	if s.Work() != 0 || s.Depth() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestStatsNilSafe(t *testing.T) {
	var s *Stats
	s.AddWork(1)
	s.AddDepth(1)
	s.Add(1, 1)
	s.Reset()
	if s.Work() != 0 || s.Depth() != 0 {
		t.Fatal("nil Stats must act as no-op")
	}
}

func TestStatsConcurrent(t *testing.T) {
	var s Stats
	For(1000, func(i int) { s.Add(1, 0) })
	if s.Work() != 1000 {
		t.Fatalf("work=%d want 1000", s.Work())
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]int64{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := Log2(n); got != want {
			t.Errorf("Log2(%d)=%d want %d", n, got, want)
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers() < 1 {
		t.Fatal("Workers() < 1")
	}
}

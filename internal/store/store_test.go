package store_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/store/storetest"
)

func TestResultLRUContract(t *testing.T) {
	storetest.ResultStore(t, func(t *testing.T) store.ResultStore {
		return store.NewResultLRU(64)
	})
}

func TestRevisionLRUContract(t *testing.T) {
	storetest.RevisionStore(t, func(t *testing.T) store.RevisionStore {
		return store.NewRevisionLRU(64)
	})
}

func key(i byte) store.Key {
	var k store.Key
	k[0] = i
	return k
}

func rev(n int, parent *store.Key) *store.Revision {
	return &store.Revision{State: &core.DecisionState{N: n, M: 2, X: make([]float64, n)}, Parent: parent}
}

func TestResultLRUEvictsLeastRecent(t *testing.T) {
	c := store.NewResultLRU(2)
	c.Put(key(1), []byte("a"), 7)
	c.Put(key(2), []byte("b"), 8)
	if b, it := c.Get(key(1)); b == nil || it != 7 {
		t.Fatalf("k1: got (%q, %d), want body with iters 7", b, it)
	}
	c.Put(key(3), []byte("c"), 9) // evicts k2 (least recently used)
	if b, _ := c.Get(key(2)); b != nil {
		t.Fatal("k2 should have been evicted")
	}
	b1, _ := c.Get(key(1))
	b3, it3 := c.Get(key(3))
	if b1 == nil || b3 == nil || it3 != 9 {
		t.Fatal("survivors missing")
	}
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
}

func TestResultLRUDisabled(t *testing.T) {
	c := store.NewResultLRU(0)
	c.Put(key(1), []byte("a"), 1)
	if b, _ := c.Get(key(1)); b != nil {
		t.Fatal("disabled store must drop puts")
	}
	if c.Len() != 0 {
		t.Fatal("disabled store must stay empty")
	}
}

// The GC/pinning policy: a lineage root with live derived revisions
// survives LRU pressure that would otherwise evict it; pressure falls
// on unrelated entries and leaves instead.
func TestRevisionLRUPinsLineageRoots(t *testing.T) {
	r := store.NewRevisionLRU(4)
	root := key(1)
	r.Put(root, rev(2, nil))
	// Derive a chain off the root: root <- d1 <- d2. Root and d1 are
	// now pinned (each has a live child); d2 is a leaf.
	d1, d2 := key(2), key(3)
	r.Put(d1, rev(3, &root))
	r.Put(d2, rev(4, &d1))

	// Flood with unrelated revisions — far more than capacity — while
	// the client keeps using the chain head (each flood step reads d2,
	// as a streaming client does between deltas). The root and d1 are
	// never touched again, so plain LRU would evict them first; the
	// pinning policy must not, because the live head warm-starts off
	// them.
	for i := byte(10); i < 30; i++ {
		k := key(i)
		r.Put(k, rev(5, nil))
		if r.Get(d2) == nil {
			t.Fatalf("active chain head evicted at flood step %d", i)
		}
	}

	if r.Get(root) == nil {
		t.Fatal("pinned lineage root was evicted under churn")
	}
	if r.Get(d1) == nil {
		t.Fatal("pinned interior chain revision was evicted under churn")
	}
	if r.Len() > 4 {
		t.Fatalf("len %d exceeds cap 4", r.Len())
	}
	if r.PinnedSkips() == 0 {
		t.Fatal("eviction never skipped a pinned entry — pinning not exercised")
	}
}

// When a chain's children are themselves evicted, the root's pin drops
// and ordinary LRU resumes: pinning is a liveness rule, not a leak.
func TestRevisionLRUUnpinsWhenChildrenDie(t *testing.T) {
	r := store.NewRevisionLRU(3)
	root := key(1)
	r.Put(root, rev(2, nil))
	leaf := key(2)
	r.Put(leaf, rev(3, &root))

	// Three fresh entries: capacity 3 forces evictions. The leaf is
	// unpinned and colder than the new entries, so it goes first; once
	// it is gone the root is unpinned and goes next.
	for i := byte(10); i < 13; i++ {
		r.Put(key(i), rev(4, nil))
	}
	if r.Get(leaf) != nil {
		t.Fatal("unpinned leaf should have been evicted")
	}
	if r.Get(root) != nil {
		t.Fatal("root should be evictable after its only child died")
	}
}

// A store whose every resident entry is pinned still evicts (plain LRU
// fallback): memory stays bounded even for a store-sized chain.
func TestRevisionLRUBoundedWhenAllPinned(t *testing.T) {
	r := store.NewRevisionLRU(3)
	// Chain k1 <- k2 <- k3 <- k4...: every resident is some entry's
	// parent.
	prev := key(1)
	r.Put(prev, rev(2, nil))
	for i := byte(2); i <= 8; i++ {
		k := key(i)
		p := prev
		r.Put(k, rev(3, &p))
		prev = k
	}
	if r.Len() > 3 {
		t.Fatalf("len %d exceeds cap 3 with an all-pinned chain", r.Len())
	}
}

package store

import (
	"container/list"
	"sync"
)

// ResultLRU is the in-process ResultStore: marshaled response bodies
// with LRU eviction at a fixed entry cap. Hits return the exact bytes
// of the original response, so a cached answer is bitwise identical to
// the solve that produced it — the serving-layer analogue of the
// golden-corpus guarantee.
type ResultLRU struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used
	m   map[Key]*list.Element

	hits, misses int64
}

type resultEntry struct {
	key  Key
	body []byte
	// iters is the solver iteration count of the cached solve — served
	// in the X-Psdpd-Iterations header. Solves are deterministic, so the
	// count is part of the content the digest addresses: hits repeat it
	// bitwise just like the body.
	iters int
}

// NewResultLRU returns a store holding at most max entries; max <= 0
// disables it (every Get misses, Put drops).
func NewResultLRU(max int) *ResultLRU {
	return &ResultLRU{max: max, ll: list.New(), m: make(map[Key]*list.Element)}
}

// Get implements ResultStore.
func (c *ResultLRU) Get(key Key) ([]byte, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		e := el.Value.(*resultEntry)
		return e.body, e.iters
	}
	c.misses++
	return nil, 0
}

// Put implements ResultStore.
func (c *ResultLRU) Put(key Key, body []byte, iters int) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		e := el.Value.(*resultEntry)
		e.body, e.iters = body, iters
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&resultEntry{key: key, body: body, iters: iters})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*resultEntry).key)
	}
}

// Len implements ResultStore.
func (c *ResultLRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Counters implements ResultStore.
func (c *ResultLRU) Counters() (int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

package store

import (
	"container/list"
	"sync"
)

// RevisionLRU is the in-process RevisionStore: a bounded LRU with a
// lineage-pinning eviction policy. Plain LRU would happily evict the
// root of an active warm-start chain — the client streams deltas
// against a base while unrelated traffic churns the store, the base
// (cold, by definition: clients POST deltas, not the base) slides to
// the LRU tail, and the next delta 404s mid-stream. Pinning prevents
// exactly that: a revision with live derived revisions (entries whose
// Parent names it) is skipped during eviction, so pressure falls on
// leaves and unrelated entries first. Only when every resident entry
// is pinned — a store-sized chain, not a churn pattern — does eviction
// fall back to plain LRU so memory stays bounded.
type RevisionLRU struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used
	m   map[Key]*list.Element
	// pins[k] counts resident revisions whose Parent is k; an entry
	// with pins > 0 is an active lineage root (or interior node) and is
	// passed over by the eviction scan.
	pins map[Key]int

	// pinnedSkips counts eviction scans that passed over a pinned
	// entry — the observable trace of the GC policy doing its job.
	pinnedSkips int64
}

type revEntry struct {
	key Key
	rev *Revision
}

// NewRevisionLRU returns a store holding at most max revisions; max <=
// 0 disables it (every Get misses, Put drops).
func NewRevisionLRU(max int) *RevisionLRU {
	return &RevisionLRU{max: max, ll: list.New(), m: make(map[Key]*list.Element), pins: make(map[Key]int)}
}

// Get implements RevisionStore.
func (r *RevisionLRU) Get(key Key) *Revision {
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.m[key]; ok {
		r.ll.MoveToFront(el)
		return el.Value.(*revEntry).rev
	}
	return nil
}

// Put implements RevisionStore.
func (r *RevisionLRU) Put(key Key, rev *Revision) {
	if r.max <= 0 || rev == nil || (rev.State == nil && rev.MixedX == nil) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.m[key]; ok {
		e := el.Value.(*revEntry)
		r.unpin(e.rev)
		e.rev = rev
		r.pin(rev)
		r.ll.MoveToFront(el)
		return
	}
	r.m[key] = r.ll.PushFront(&revEntry{key: key, rev: rev})
	r.pin(rev)
	for r.ll.Len() > r.max {
		r.evictOne()
	}
}

// evictOne removes the least recently used UNPINNED entry, falling
// back to the plain LRU victim when every resident entry is pinned.
// Callers hold r.mu.
func (r *RevisionLRU) evictOne() {
	var victim *list.Element
	for el := r.ll.Back(); el != nil; el = el.Prev() {
		if r.pins[el.Value.(*revEntry).key] == 0 {
			victim = el
			break
		}
		r.pinnedSkips++
	}
	if victim == nil {
		victim = r.ll.Back() // every entry pinned: bound memory anyway
	}
	e := victim.Value.(*revEntry)
	r.ll.Remove(victim)
	delete(r.m, e.key)
	r.unpin(e.rev)
}

// pin/unpin maintain the live-children counts. A parent needs no store
// entry to carry a pin count (it may already be gone); counts at zero
// are deleted so the map tracks only live lineage edges.
func (r *RevisionLRU) pin(rev *Revision) {
	if rev.Parent != nil {
		r.pins[*rev.Parent]++
	}
}

func (r *RevisionLRU) unpin(rev *Revision) {
	if rev.Parent == nil {
		return
	}
	if n := r.pins[*rev.Parent] - 1; n > 0 {
		r.pins[*rev.Parent] = n
	} else {
		delete(r.pins, *rev.Parent)
	}
}

// Len implements RevisionStore.
func (r *RevisionLRU) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ll.Len()
}

// PinnedSkips reports how many times eviction passed over a pinned
// lineage entry — nonzero means the GC policy saved an active chain.
func (r *RevisionLRU) PinnedSkips() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pinnedSkips
}

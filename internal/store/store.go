// Package store defines the stateful layers of the serving tier as
// pluggable interfaces: the content-addressed result store (cached
// response bytes) and the warm-start revision store (final solver
// states + materialized instances). The serve package programs against
// these interfaces only; the in-process LRU implementations in this
// package are the single-node defaults, and internal/cluster provides
// peer-backed implementations that consult the digest's owning replica
// on a local miss. Because every key is a content digest — two requests
// share a key exactly when the solver is guaranteed to produce
// bitwise-identical bytes for them — any implementation that returns
// previously-stored bytes unmodified preserves the serving tier's
// byte-identical-response contract, no matter which node produced them.
package store

import (
	"encoding/hex"
	"fmt"

	"repro/internal/core"
	"repro/internal/instio"
)

// Key is a content address: the SHA-256 serve computes over the
// canonicalized request. The digest is the placement key — the same
// bytes route, cache, and warm-start a request everywhere in the fleet.
type Key [32]byte

// String returns the canonical lowercase-hex form clients see in
// X-Psdpd-Digest.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey decodes the hex digest form clients echo back.
func ParseKey(s string) (Key, error) {
	var k Key
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != len(k) {
		return Key{}, fmt.Errorf("store: %q is not a %d-byte hex digest", s, len(k))
	}
	copy(k[:], raw)
	return k, nil
}

// ResultStore holds marshaled 2xx response bodies by content address.
// Implementations must return stored bytes unmodified (callers never
// mutate a returned slice) and must be safe for concurrent use. A nil
// body from Get means miss.
type ResultStore interface {
	// Get returns the stored body and solver iteration count for key,
	// or (nil, 0) on a miss.
	Get(key Key) ([]byte, int)
	// Put stores body (and the solve's iteration count) under key. The
	// store takes ownership of body.
	Put(key Key, body []byte, iters int)
	// Len reports the number of locally held entries.
	Len() int
	// Counters returns (hits, misses) observed by Get so far.
	Counters() (hits, misses int64)
}

// Revision is one warm-startable solve the service remembers: the
// materialized instance document (what a delta's edits apply to), the
// warm-start payload — exactly one of State (decision bases) and
// MixedX (mixed bases) is non-nil — and, for revisions derived through
// /v1/delta, the key of the base revision they resumed from. Parent is
// what the pinning GC policy walks: a base with live derived revisions
// must not be evicted out from under an active warm-start chain.
type Revision struct {
	Inst   *instio.Instance    `json:"instance"`
	State  *core.DecisionState `json:"state,omitempty"`
	MixedX []float64           `json:"mixedX,omitempty"`
	Parent *Key                `json:"-"`
}

// RevisionStore holds revisions by the digest the client was handed for
// the generating solve (X-Psdpd-Digest). Revisions are immutable after
// Put: concurrent delta requests read the same revision. Nil from Get
// means miss.
type RevisionStore interface {
	Get(key Key) *Revision
	Put(key Key, rev *Revision)
	Len() int
}

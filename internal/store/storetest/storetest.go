// Package storetest is the contract test suite for the store
// interfaces. Every ResultStore and RevisionStore implementation —
// the in-process LRUs and the peer-backed cluster stores alike — must
// pass these suites: the serving tier's byte-identical-response
// guarantee rests on any implementation returning exactly the bytes
// that were put, keyed exactly by content address.
package storetest

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/instio"
	"repro/internal/store"
)

// key returns a distinct deterministic Key.
func key(i byte) store.Key {
	var k store.Key
	k[0], k[1] = i, i^0x5a
	return k
}

// ResultStore runs the contract suite against a fresh store from
// factory. The factory is called per subtest and must return an empty
// store that retains at least 8 entries before evicting.
func ResultStore(t *testing.T, factory func(t *testing.T) store.ResultStore) {
	t.Helper()

	t.Run("MissIsNil", func(t *testing.T) {
		s := factory(t)
		if b, it := s.Get(key(1)); b != nil || it != 0 {
			t.Fatalf("empty store Get = (%q, %d), want (nil, 0)", b, it)
		}
	})

	t.Run("PutGetExactBytes", func(t *testing.T) {
		s := factory(t)
		body := []byte(`{"kind":"decision","x":[0.125,3.5]}`)
		s.Put(key(2), body, 17)
		got, it := s.Get(key(2))
		if !bytes.Equal(got, body) {
			t.Fatalf("Get = %q, want the exact bytes %q", got, body)
		}
		if it != 17 {
			t.Fatalf("iters = %d, want 17", it)
		}
	})

	t.Run("KeysAreIndependent", func(t *testing.T) {
		s := factory(t)
		for i := byte(0); i < 8; i++ {
			s.Put(key(i), []byte{i, i + 1}, int(i))
		}
		for i := byte(0); i < 8; i++ {
			b, it := s.Get(key(i))
			if !bytes.Equal(b, []byte{i, i + 1}) || it != int(i) {
				t.Fatalf("key %d: got (%v, %d)", i, b, it)
			}
		}
	})

	t.Run("OverwriteReplaces", func(t *testing.T) {
		s := factory(t)
		s.Put(key(3), []byte("old"), 1)
		s.Put(key(3), []byte("new"), 2)
		b, it := s.Get(key(3))
		if string(b) != "new" || it != 2 {
			t.Fatalf("after overwrite: (%q, %d), want (new, 2)", b, it)
		}
	})

	t.Run("CountersMove", func(t *testing.T) {
		s := factory(t)
		s.Put(key(4), []byte("x"), 0)
		s.Get(key(4))
		s.Get(key(5))
		hits, misses := s.Counters()
		if hits < 1 {
			t.Fatalf("hits = %d, want >= 1", hits)
		}
		if misses < 1 {
			t.Fatalf("misses = %d, want >= 1", misses)
		}
	})

	t.Run("ConcurrentAccessIsSafe", func(t *testing.T) {
		s := factory(t)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					k := key(byte(i % 6))
					s.Put(k, []byte(fmt.Sprintf("v%d", i%6)), i%6)
					if b, _ := s.Get(k); b != nil && string(b) != fmt.Sprintf("v%d", i%6) {
						// Another goroutine may have raced a different
						// value in only if bodies differ per key — they
						// don't here, so any body must match.
						t.Errorf("goroutine %d: got %q", g, b)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	})
}

// testRevision builds a minimal valid decision revision.
func testRevision(n int, parent *store.Key) *store.Revision {
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n*(i+1))
	}
	return &store.Revision{
		Inst:   &instio.Instance{},
		State:  &core.DecisionState{N: n, M: 4, Eps: 0.25, T: 3, X: x, Engine: core.EngineNameMMW},
		Parent: parent,
	}
}

// RevisionStore runs the contract suite against a fresh store from
// factory. The factory must return an empty store retaining at least 4
// revisions before evicting.
func RevisionStore(t *testing.T, factory func(t *testing.T) store.RevisionStore) {
	t.Helper()

	t.Run("MissIsNil", func(t *testing.T) {
		s := factory(t)
		if rev := s.Get(key(1)); rev != nil {
			t.Fatalf("empty store Get = %+v, want nil", rev)
		}
	})

	t.Run("PutGetRoundTrip", func(t *testing.T) {
		s := factory(t)
		in := testRevision(5, nil)
		s.Put(key(2), in)
		out := s.Get(key(2))
		if out == nil {
			t.Fatal("stored revision missing")
		}
		if out.State == nil || out.State.N != 5 || len(out.State.X) != 5 {
			t.Fatalf("state mangled: %+v", out.State)
		}
		for i, v := range in.State.X {
			if out.State.X[i] != v {
				t.Fatalf("X[%d] = %v, want %v (bitwise)", i, out.State.X[i], v)
			}
		}
		if out.Inst == nil {
			t.Fatal("instance dropped")
		}
	})

	t.Run("MixedPayload", func(t *testing.T) {
		s := factory(t)
		s.Put(key(3), &store.Revision{Inst: &instio.Instance{}, MixedX: []float64{0.5, 0.25}})
		out := s.Get(key(3))
		if out == nil || len(out.MixedX) != 2 || out.MixedX[0] != 0.5 {
			t.Fatalf("mixed revision mangled: %+v", out)
		}
	})

	t.Run("EmptyPayloadDropped", func(t *testing.T) {
		s := factory(t)
		s.Put(key(4), &store.Revision{Inst: &instio.Instance{}})
		if s.Get(key(4)) != nil {
			t.Fatal("revision with neither state nor mixed payload should not be stored")
		}
	})

	t.Run("OverwriteReplaces", func(t *testing.T) {
		s := factory(t)
		s.Put(key(5), testRevision(3, nil))
		s.Put(key(5), testRevision(7, nil))
		out := s.Get(key(5))
		if out == nil || out.State.N != 7 {
			t.Fatalf("overwrite lost: %+v", out)
		}
	})

	t.Run("ConcurrentAccessIsSafe", func(t *testing.T) {
		s := factory(t)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 30; i++ {
					k := key(byte(i % 4))
					s.Put(k, testRevision(2+i%4, nil))
					s.Get(k)
				}
			}()
		}
		wg.Wait()
	})
}

package sketch

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/matrix"
)

func TestRowsBounds(t *testing.T) {
	if Rows(0, 0.1) != 1 {
		t.Fatal("Rows(0) should clamp to 1")
	}
	if got := Rows(10, 0.1); got != 10 {
		t.Fatalf("Rows should clamp to m, got %d", got)
	}
	big := Rows(100000, 0.5)
	if big < 10 || big > 100000 {
		t.Fatalf("Rows(1e5, 0.5) = %d out of sane range", big)
	}
	// Tighter eps needs more rows.
	if Rows(100000, 0.1) <= Rows(100000, 0.5) {
		t.Fatal("smaller eps should need more rows")
	}
	if Rows(16, 0) < 1 {
		t.Fatal("eps=0 must not produce zero rows")
	}
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := New(0, 5, rng); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := New(5, 0, rng); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := New(2, 2, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

// With k rows, E‖Πu‖² = ‖u‖²; averaged over many independent sketches
// the estimate should concentrate tightly.
func TestNormPreservationInExpectation(t *testing.T) {
	m := 60
	rng := rand.New(rand.NewPCG(2, 3))
	u := make([]float64, m)
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	want := matrix.VecDot(u, u)
	trials := 300
	var sum float64
	for trial := 0; trial < trials; trial++ {
		j, err := New(8, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		sum += j.Norm2Sq(u)
	}
	avg := sum / float64(trials)
	if math.Abs(avg-want) > 0.15*want {
		t.Fatalf("E‖Πu‖² = %v want ≈ %v", avg, want)
	}
}

// A single sketch with the recommended row count should estimate norms
// within a few ε for a batch of vectors (w.h.p.; fixed seed keeps the
// test deterministic).
func TestNormPreservationSingleSketch(t *testing.T) {
	m := 200
	eps := 0.25
	rng := rand.New(rand.NewPCG(4, 5))
	j, err := New(Rows(m, eps), m, rng)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		u := make([]float64, m)
		for i := range u {
			u[i] = rng.NormFloat64()
		}
		want := matrix.VecDot(u, u)
		got := j.Norm2Sq(u)
		if got < (1-2*eps)*want || got > (1+2*eps)*want {
			t.Fatalf("trial %d: ‖Πu‖² = %v outside (1±2ε)‖u‖² = %v", trial, got, want)
		}
	}
}

func TestApplyMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 7))
	j, err := New(4, 9, rng)
	if err != nil {
		t.Fatal(err)
	}
	u := make([]float64, 9)
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	got := j.Apply(u)
	want := j.M.MulVec(u)
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("Apply disagrees with matrix multiply")
		}
	}
	if j.K() != 4 || j.Dim() != 9 {
		t.Fatal("K/Dim wrong")
	}
	if len(j.RowVec(2)) != 9 {
		t.Fatal("RowVec length wrong")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a, err := New(3, 5, rand.New(rand.NewPCG(9, 9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(3, 5, rand.New(rand.NewPCG(9, 9)))
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.ApproxEqual(a.M, b.M, 0) {
		t.Fatal("same seed should give identical sketches")
	}
}

// Package sketch implements the Johnson–Lindenstrauss Gaussian
// projection used by Theorem 4.1's bigDotExp: a k-by-m matrix Π with
// i.i.d. N(0, 1/k) entries preserves squared Euclidean norms to within
// (1±ε) with high probability when k = O(ε⁻² log m) [DG03, IM98].
package sketch

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/matrix"
	"repro/internal/work"
)

// JL is a Gaussian Johnson–Lindenstrauss sketch.
type JL struct {
	// M is the k-by-m projection matrix with N(0, 1/k) entries, so that
	// E‖M·u‖² = ‖u‖².
	M *matrix.Dense
}

// Rows returns the recommended sketch dimension for m-dimensional
// vectors at accuracy eps: ⌈c·ln(max(m, 2))/eps²⌉ with c = 4, clamped
// to [1, m]. Clamping to m keeps the sketch never larger than the
// identity; callers detect rows == m and may skip sketching entirely.
func Rows(m int, eps float64) int {
	if m <= 0 {
		return 1
	}
	if eps <= 0 {
		eps = 0.5
	}
	k := int(math.Ceil(4 * math.Log(math.Max(float64(m), 2)) / (eps * eps)))
	if k < 1 {
		k = 1
	}
	if k > m {
		k = m
	}
	return k
}

// New creates a k-by-m Gaussian sketch using rng (which must not be
// nil; the solver threads a seeded stream through for reproducibility).
func New(k, m int, rng *rand.Rand) (*JL, error) {
	if k <= 0 || m <= 0 {
		return nil, fmt.Errorf("sketch: New(%d, %d): dimensions must be positive", k, m)
	}
	if rng == nil {
		return nil, fmt.Errorf("sketch: New: rng must not be nil")
	}
	j := &JL{M: matrix.New(k, m)}
	j.Refill(rng)
	return j, nil
}

// NewWS is New drawing the projection storage from ws (nil ws behaves
// like New). Return the matrix with ws.PutMat(j.M) when the sketch is
// retired so sequential solver calls recycle one allocation.
func NewWS(ws *work.Workspace, k, m int, rng *rand.Rand) (*JL, error) {
	if k <= 0 || m <= 0 {
		return nil, fmt.Errorf("sketch: New(%d, %d): dimensions must be positive", k, m)
	}
	if rng == nil {
		return nil, fmt.Errorf("sketch: New: rng must not be nil")
	}
	j := &JL{M: ws.Mat(k, m)}
	j.Refill(rng)
	return j, nil
}

// Refill redraws every entry of the projection from rng, in place: a
// fresh sketch without a fresh allocation. The MMW inner loop needs an
// independent Π every iteration (Theorem 4.1's bigDotExp), so the
// factored oracle keeps one JL and refills it — the values are
// identical to constructing a new sketch from the same rng state.
func (j *JL) Refill(rng *rand.Rand) {
	inv := 1 / math.Sqrt(float64(j.M.R))
	for i := range j.M.Data {
		j.M.Data[i] = rng.NormFloat64() * inv
	}
}

// K returns the number of sketch rows.
func (j *JL) K() int { return j.M.R }

// Dim returns the ambient dimension m.
func (j *JL) Dim() int { return j.M.C }

// Apply returns Π·u.
func (j *JL) Apply(u []float64) []float64 {
	return j.M.MulVec(u)
}

// Norm2Sq returns ‖Π·u‖², the JL estimate of ‖u‖².
func (j *JL) Norm2Sq(u []float64) float64 {
	pu := j.M.MulVec(u)
	return matrix.VecDot(pu, pu)
}

// RowVec returns row r of Π as a slice aliasing the sketch storage.
// bigDotExp feeds these rows through exp(Φ/2) one at a time.
func (j *JL) RowVec(r int) []float64 {
	return j.M.Row(r)
}

package work

import "testing"

func TestVecReuse(t *testing.T) {
	ws := New()
	v := ws.Vec(16)
	if len(v) != 16 {
		t.Fatalf("Vec(16) has length %d", len(v))
	}
	v[0] = 42
	ws.PutVec(v)
	w := ws.Vec(16)
	if &w[0] != &v[0] {
		t.Fatal("Vec(16) after PutVec did not reuse the buffer")
	}
	if ws.Misses() != 1 {
		t.Fatalf("misses = %d, want 1", ws.Misses())
	}
	// A different size misses again.
	_ = ws.Vec(17)
	if ws.Misses() != 2 {
		t.Fatalf("misses = %d, want 2", ws.Misses())
	}
}

func TestMatReuse(t *testing.T) {
	ws := New()
	m := ws.Mat(4, 8)
	if m.R != 4 || m.C != 8 {
		t.Fatalf("Mat(4, 8) is %dx%d", m.R, m.C)
	}
	ws.PutMat(m)
	m2 := ws.Mat(4, 8)
	if m2 != m {
		t.Fatal("Mat(4, 8) after PutMat did not reuse the matrix")
	}
	// Transposed shape is a distinct pool key.
	m3 := ws.Mat(8, 4)
	if m3 == m2 {
		t.Fatal("Mat(8, 4) must not alias the 4x8 pool")
	}
}

func TestIntsReuse(t *testing.T) {
	ws := New()
	v := ws.Ints(5)
	ws.PutInts(v)
	w := ws.Ints(5)
	if &w[0] != &v[0] {
		t.Fatal("Ints(5) after PutInts did not reuse the buffer")
	}
}

func TestZeroValueWorkspace(t *testing.T) {
	// The zero value must be usable directly — the type is publicly
	// re-exported, so `var ws psdp.Workspace` has to work.
	var ws Workspace
	v := ws.Vec(8)
	ws.PutVec(v) // must not panic on the nil map
	if w := ws.Vec(8); &w[0] != &v[0] {
		t.Fatal("zero-value workspace did not reuse the buffer")
	}
	ws.PutMat(ws.Mat(2, 2))
	ws.PutInts(ws.Ints(3))
}

func TestNilWorkspace(t *testing.T) {
	var ws *Workspace
	if v := ws.Vec(8); len(v) != 8 {
		t.Fatalf("nil workspace Vec(8) has length %d", len(v))
	}
	if m := ws.Mat(3, 3); m.R != 3 || m.C != 3 {
		t.Fatal("nil workspace Mat(3, 3) wrong shape")
	}
	if v := ws.Ints(4); len(v) != 4 {
		t.Fatal("nil workspace Ints(4) wrong length")
	}
	// Puts on nil are no-ops.
	ws.PutVec(make([]float64, 8))
	ws.PutMat(nil)
	ws.PutInts(nil)
	if ws.Misses() != 0 {
		t.Fatal("nil workspace reports misses")
	}
}

func TestZeroAllocSteadyState(t *testing.T) {
	ws := New()
	step := func() {
		v := ws.Vec(64)
		m := ws.Mat(8, 8)
		ws.PutVec(v)
		ws.PutMat(m)
	}
	step() // warm up the pools
	if n := testing.AllocsPerRun(100, step); n != 0 {
		t.Fatalf("steady-state Vec/Mat cycle allocates %.1f per run, want 0", n)
	}
}

func TestEdgeSizes(t *testing.T) {
	ws := New()
	if v := ws.Vec(0); v != nil {
		t.Fatal("Vec(0) must be nil")
	}
	if v := ws.Vec(-3); v != nil {
		t.Fatal("Vec(-3) must be nil")
	}
	ws.PutVec(nil) // must not panic or pollute pools
	if v := ws.Vec(1); len(v) != 1 {
		t.Fatal("Vec(1) wrong length")
	}
}

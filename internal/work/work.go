// Package work provides the solver's scratch-buffer arena: a
// size-keyed pool of vectors, integer index slices, and dense matrices
// that the MMW decision loop draws from instead of allocating.
//
// Algorithm 3.1 runs R = O(ε⁻³ log² n) iterations per decision call,
// and every iteration needs the same handful of temporaries — ratio
// vectors, Ψ accumulators, eigendecomposition scratch, Taylor/Horner
// ping-pong matrices, Lanczos bases, sketch rows. A Workspace hands
// those buffers out and takes them back, so after the first iteration
// warms the pools a full steady-state iteration performs zero heap
// allocations on the dense path (see the allocation-regression tests in
// internal/core).
//
// A Workspace is deliberately dumb: free lists keyed by exact size, no
// trimming, no concurrency. One workspace belongs to one solver run (or
// one sequence of runs — MaximizePacking threads a single workspace
// through all of its decision calls). Buffers handed out are NOT
// zeroed; every consumer in this repository fully overwrites its
// scratch before reading it. Concurrent kernels must draw their
// per-worker scratch up front from the owning goroutine and hold it for
// the run, which is what the oracles do for their per-sketch-row
// buffers.
//
// All methods are nil-receiver safe: a nil *Workspace degrades to plain
// allocation (Get) and dropping (Put), so workspace-threaded code paths
// need no nil checks and stay usable standalone.
package work

import (
	"repro/internal/matrix"
)

type matKey struct{ r, c int }

// Workspace is a size-keyed arena of reusable buffers. The zero value
// is ready to use (pools initialize on first Put), as is a nil pointer.
type Workspace struct {
	vecs  map[int][][]float64
	ints  map[int][][]int
	mats  map[matKey][]*matrix.Dense
	stash map[any][]any
	// misses counts pool misses (fresh allocations); steady-state reuse
	// keeps it flat, which the workspace tests assert.
	misses int
}

// New returns an empty workspace. Pools fill lazily on Put.
func New() *Workspace {
	return &Workspace{}
}

// Misses reports how many requests missed the pools and allocated.
func (ws *Workspace) Misses() int {
	if ws == nil {
		return 0
	}
	return ws.misses
}

// Vec hands out a float64 slice of length n. Contents are undefined;
// callers must overwrite before reading. n <= 0 returns nil.
func (ws *Workspace) Vec(n int) []float64 {
	if n <= 0 {
		return nil
	}
	if ws != nil {
		if free := ws.vecs[n]; len(free) > 0 {
			v := free[len(free)-1]
			ws.vecs[n] = free[:len(free)-1]
			return v
		}
		ws.misses++
	}
	return make([]float64, n)
}

// PutVec returns a vector to the pool. Aliases must not be retained by
// the caller after the put.
func (ws *Workspace) PutVec(v []float64) {
	if ws == nil || len(v) == 0 {
		return
	}
	if ws.vecs == nil {
		ws.vecs = make(map[int][][]float64)
	}
	n := len(v)
	ws.vecs[n] = append(ws.vecs[n], v)
}

// Ints hands out an int slice of length n (contents undefined).
func (ws *Workspace) Ints(n int) []int {
	if n <= 0 {
		return nil
	}
	if ws != nil {
		if free := ws.ints[n]; len(free) > 0 {
			v := free[len(free)-1]
			ws.ints[n] = free[:len(free)-1]
			return v
		}
		ws.misses++
	}
	return make([]int, n)
}

// PutInts returns an int slice to the pool.
func (ws *Workspace) PutInts(v []int) {
	if ws == nil || len(v) == 0 {
		return
	}
	if ws.ints == nil {
		ws.ints = make(map[int][][]int)
	}
	n := len(v)
	ws.ints[n] = append(ws.ints[n], v)
}

// Mat hands out an r-by-c dense matrix. Contents are undefined; callers
// must overwrite (accumulating kernels zero their output first).
func (ws *Workspace) Mat(r, c int) *matrix.Dense {
	if ws != nil {
		k := matKey{r, c}
		if free := ws.mats[k]; len(free) > 0 {
			m := free[len(free)-1]
			ws.mats[k] = free[:len(free)-1]
			return m
		}
		ws.misses++
	}
	return matrix.New(r, c)
}

// Stash stores an opaque reusable bundle under key (any comparable
// value; callers use unexported struct keys carrying the bundle's shape
// so distinct shapes never collide). Several bundles may be stashed
// under one key — slice semantics, like the buffer pools — because
// several holders of the same shape can be live at once (e.g. the JL
// and exact operator oracles of one decision run). A nil workspace
// drops the bundle.
func (ws *Workspace) Stash(key, v any) {
	if ws == nil || v == nil {
		return
	}
	if ws.stash == nil {
		ws.stash = make(map[any][]any)
	}
	ws.stash[key] = append(ws.stash[key], v)
}

// TakeStash pops a bundle previously stashed under key, reporting
// whether one was available. Misses count toward Misses(), since the
// caller will build the bundle fresh.
func (ws *Workspace) TakeStash(key any) (any, bool) {
	if ws == nil {
		return nil, false
	}
	free := ws.stash[key]
	if len(free) == 0 {
		ws.misses++
		return nil, false
	}
	v := free[len(free)-1]
	free[len(free)-1] = nil
	ws.stash[key] = free[:len(free)-1]
	return v, true
}

// PutMat returns a matrix to the pool.
func (ws *Workspace) PutMat(m *matrix.Dense) {
	if ws == nil || m == nil {
		return
	}
	if ws.mats == nil {
		ws.mats = make(map[matKey][]*matrix.Dense)
	}
	k := matKey{m.R, m.C}
	ws.mats[k] = append(ws.mats[k], m)
}

// Package mixed implements the extension the paper's conclusion (§5)
// poses as future work and attributes to Jain–Yao 2012: positive SDPs
// with a matrix packing side and DIAGONAL covering constraints,
//
//	find x ≥ 0 with  Σᵢ xᵢAᵢ ≼ I   (matrix packing)
//	            and  C·x ≥ 1       (entrywise covering, C ≥ 0, d-by-n).
//
// As the paper notes, packing conditions between diagonal matrices are
// equivalent to pointwise conditions on the diagonal entries, so this
// class is "positive covering LP constraints + one matrix packing
// constraint" — the natural first extension beyond pure packing.
//
// The algorithm couples Algorithm 3.1's matrix soft-max packing ratios
// pᵢ = exp(Ψ)•Aᵢ/Tr[exp(Ψ)] with Young-style soft-min covering ratios
// cᵢ = Σⱼ e^{−(Cx)ⱼ}Cⱼᵢ / Σⱼ e^{−(Cx)ⱼ}·c̄ and multiplies the
// coordinates whose packing cost is small relative to their covering
// benefit. Algorithm 3.1's coordinate cap bounds the iterate: a
// coordinate that reaches xᵢ·λ_max(Aᵢ) = 1+ε can never be part of a
// bicriteria point with more weight on i, so it is clamped there and
// frozen, forcing the remaining coverage onto coordinates with packing
// headroom. The output is always VERIFIED: Solve reports a bicriteria
// point (covering within 1−ε, packing within 1+O(ε)) only after
// checking both sides numerically, and returns StatusInconclusive
// otherwise — it never claims an unverified answer.
package mixed

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/matrix"
)

// Problem is a mixed packing/covering instance.
type Problem struct {
	// Pack holds the packing constraints Aᵢ (dense or factored).
	Pack core.ConstraintSet
	// Cover is the nonnegative d-by-n covering matrix (rows are
	// covering constraints over the same variables).
	Cover *matrix.Dense
}

// NewProblem validates shapes and signs.
func NewProblem(pack core.ConstraintSet, cover *matrix.Dense) (*Problem, error) {
	if pack == nil || cover == nil {
		return nil, errors.New("mixed: nil inputs")
	}
	if cover.C != pack.N() {
		return nil, fmt.Errorf("mixed: covering matrix has %d columns, want n=%d", cover.C, pack.N())
	}
	for i, v := range cover.Data {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("mixed: covering entry %d = %v invalid", i, v)
		}
	}
	// Every covering row needs at least one positive entry or the row
	// is unsatisfiable.
	for j := 0; j < cover.R; j++ {
		row := cover.Row(j)
		ok := false
		for _, v := range row {
			if v > 0 {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("mixed: covering row %d is all zero (unsatisfiable)", j)
		}
	}
	return &Problem{Pack: pack, Cover: cover}, nil
}

// Status labels the solve outcome.
type Status int

const (
	// StatusFeasible: x satisfies C·x ≥ (1−ε)·1 and λ_max(Σ xᵢAᵢ) ≤ 1+10ε,
	// both verified numerically.
	StatusFeasible Status = iota
	// StatusInconclusive: the iteration budget ran out without a
	// verified bicriteria point. The result still carries the best
	// iterate and its measured violations.
	StatusInconclusive
)

// String implements fmt.Stringer.
func (s Status) String() string {
	if s == StatusFeasible {
		return "feasible"
	}
	return "inconclusive"
}

// Result reports a mixed solve.
type Result struct {
	Status Status
	// X is the final iterate.
	X []float64
	// MinCoverage is min_j (Cx)_j (want ≥ 1−ε).
	MinCoverage float64
	// LambdaMax is λ_max(Σ xᵢAᵢ), verified (want ≤ 1+10ε).
	LambdaMax float64
	// Iterations executed.
	Iterations int
	// Capped counts the coordinates frozen at their Algorithm 3.1 cap
	// xᵢ = (1+ε)/λ_max(Aᵢ) during the run.
	Capped int
	// Engine names the dynamics that ran ("mmw" or "alo"; Auto is
	// resolved per instance before the run starts).
	Engine string
	// WarmStarted reports whether Options.WarmStart passed the
	// feasibility guard and seeded the initial iterate.
	WarmStarted bool
}

// Options configure Solve.
type Options struct {
	// MaxIter caps iterations; 0 derives the engine's budget
	// (Algorithm 3.1's R for mmw, the O(ε⁻² log² N) ALO cap for alo).
	MaxIter int
	// Seed drives factored-oracle randomness.
	Seed uint64
	// Oracle selects the packing primitive (as in core.Options).
	Oracle core.OracleKind
	// Engine selects the packing-side dynamics: core.EngineMMW (the
	// zero value — Algorithm 3.1 threshold steps), core.EngineALO
	// (truncated-gradient multiplicative steps), or core.EngineAuto
	// (resolved per instance by core.ResolveEngine, same rule as
	// Decision).
	Engine core.EngineKind
	// WarmStart, when non-nil, seeds the iterate from a previous run's
	// final X instead of the cold start — the incremental-solving hook
	// for drifted instances. The vector must have length n with finite
	// nonnegative entries or the run silently falls back to the cold
	// start (Result.WarmStarted reports which happened). Entries are
	// clamped to the cold-start floor from below and the coordinate cap
	// from above; the bicriteria verification at exit is unconditional
	// either way.
	WarmStart []float64
}

// run carries the per-solve state shared by both engines.
type run struct {
	p      *Problem
	eps    float64
	n, d   int
	prm    core.Params
	orc    *core.RatioOracle
	x      []float64
	frozen []bool
	// guard[i] = (1+ε)/Tr[Aᵢ] is a free lower bound on the cap: since
	// λ_max(Aᵢ) ≤ Tr[Aᵢ], no step below the guard can hit the cap, so
	// the per-constraint λ_max (a Lanczos/eigen solve) is computed
	// lazily, first time a coordinate crosses its guard.
	guard []float64
	// capv[i] = (1+ε)/λ_max(Aᵢ) once computed; 0 = not yet computed.
	capv   []float64
	unit   []float64
	capped int
}

// capFor returns the coordinate cap (1+ε)/λ_max(Aᵢ), computing and
// memoizing the certificate-grade per-constraint λ_max on first use.
func (r *run) capFor(i int) (float64, error) {
	if r.capv[i] != 0 {
		return r.capv[i], nil
	}
	for k := range r.unit {
		r.unit[k] = 0
	}
	r.unit[i] = 1
	lam, err := core.LambdaMaxPsi(r.p.Pack, r.unit)
	if err != nil {
		return 0, err
	}
	c := math.Inf(1)
	if lam > 0 {
		c = (1 + r.eps) / lam
	}
	r.capv[i] = c
	return c, nil
}

// step multiplies x[i] by mult, clamping at the coordinate cap: a step
// that would land past (1+ε)/λ_max(Aᵢ) is shortened to end exactly on
// the cap and the coordinate freezes (Algorithm 3.1's ‖x‖ bound).
// Returns the multiplier actually applied.
func (r *run) step(i int, mult float64) (float64, error) {
	nx := r.x[i] * mult
	if mult > 1 && nx > r.guard[i] {
		cap, err := r.capFor(i)
		if err != nil {
			return 0, err
		}
		if nx >= cap {
			mult = cap / r.x[i]
			nx = cap
			r.frozen[i] = true
			r.capped++
		}
	}
	r.x[i] = nx
	return mult, nil
}

// Solve searches for a bicriteria-feasible point of the mixed system at
// accuracy eps ∈ (0, 1).
func Solve(p *Problem, eps float64, opts Options) (*Result, error) {
	if eps <= 0 || eps >= 1 || math.IsNaN(eps) {
		return nil, fmt.Errorf("mixed: eps = %v out of (0, 1)", eps)
	}
	engine := core.ResolveEngine(opts.Engine, p.Pack, eps)
	if engine != core.EngineMMW && engine != core.EngineALO {
		return nil, fmt.Errorf("mixed: unknown engine %v", opts.Engine)
	}
	n := p.Pack.N()
	d := p.Cover.R
	prm, err := core.ParamsFor(n, max(p.Pack.Dim(), d), eps)
	if err != nil {
		return nil, err
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		if engine == core.EngineALO {
			maxIter = core.ALOIterCap(prm.LogN, eps)
		} else {
			maxIter = prm.R
		}
	}

	orc, err := core.NewRatioOracle(p.Pack, core.Options{
		Oracle:    opts.Oracle,
		Seed:      opts.Seed,
		SketchEps: eps / 2,
	})
	if err != nil {
		return nil, err
	}

	r := &run{
		p: p, eps: eps, n: n, d: d, prm: prm, orc: orc,
		x:      make([]float64, n),
		frozen: make([]bool, n),
		guard:  make([]float64, n),
		capv:   make([]float64, n),
		unit:   make([]float64, n),
	}

	// Cold start: the packing-safe point x⁰ᵢ = 1/(n·Tr[Aᵢ]). A zero
	// packing constraint exerts no packing pressure; give it the
	// covering-scaled start x⁰ᵢ = 1/(n·max_j Cⱼᵢ) instead, so it enters
	// the multiplicative dynamics like every other coordinate. A
	// coordinate with zero trace AND a zero covering column is useless
	// on both sides — it stays at 0, frozen.
	for i := 0; i < n; i++ {
		tr := p.Pack.Trace(i)
		if tr > 0 {
			r.x[i] = 1 / (float64(n) * tr)
			r.guard[i] = (1 + eps) / tr
			continue
		}
		r.guard[i] = math.Inf(1)
		cmax := 0.0
		for j := 0; j < d; j++ {
			if v := p.Cover.Row(j)[i]; v > cmax {
				cmax = v
			}
		}
		if cmax > 0 {
			r.x[i] = 1 / (float64(n) * cmax)
		} else {
			r.frozen[i] = true
		}
	}

	res := &Result{Status: StatusInconclusive, Engine: engine.String()}

	// Warm start: adopt a previous iterate coordinate-wise when the
	// vector is shaped and signed right, never dropping below the cold
	// floor (a zero coordinate could not grow multiplicatively) and
	// never past the cap.
	if ws := opts.WarmStart; ws != nil && len(ws) == n && warmUsable(ws) {
		for i := 0; i < n; i++ {
			if r.frozen[i] || ws[i] <= r.x[i] {
				continue
			}
			v := ws[i]
			if v > r.guard[i] {
				cap, err := r.capFor(i)
				if err != nil {
					return nil, err
				}
				if v >= cap {
					v = cap
					r.frozen[i] = true
					r.capped++
				}
			}
			r.x[i] = v
		}
		res.WarmStarted = true
	}

	if err := orc.Init(r.x); err != nil {
		return nil, err
	}

	// ALO step size over the covering-vs-packing feedback, mirroring
	// the Decision engine's constants: η = μ/2 with μ = ε/(4(1+log N)).
	aloEta := eps / (8 * (1 + prm.LogN))

	cx := make([]float64, d)
	w := make([]float64, d)
	cRatio := make([]float64, n)
	var b []int
	var mults []float64

	t := 0
	for t < maxIter {
		t++
		pr, err := orc.Ratios()
		if err != nil {
			return nil, err
		}
		// Covering soft-min weights on the shortfall, shift-stabilized.
		p.Cover.MulVecTo(cx, r.x)
		minCx := matrix.VecMin(cx)
		if minCx >= 1 {
			break // fully covered; verify below
		}
		for j := 0; j < d; j++ {
			w[j] = math.Exp(-(cx[j] - minCx))
		}
		trW := matrix.VecSum(w)
		for i := range cRatio {
			cRatio[i] = 0
		}
		for j := 0; j < d; j++ {
			wj := w[j] / trW
			if wj == 0 {
				continue
			}
			row := p.Cover.Row(j)
			for i := 0; i < n; i++ {
				cRatio[i] += wj * row[i]
			}
		}
		// Normalize the covering benefit to a dimensionless ratio
		// against its own mean so it compares with pᵢ (which averages
		// to ~1 by construction).
		meanC := matrix.VecSum(cRatio) / float64(n)
		if meanC <= 0 {
			break // nothing helps coverage: stuck
		}

		b = b[:0]
		mults = mults[:0]
		if engine == core.EngineALO {
			// Truncated-gradient step: every live coordinate moves by
			// exp(η·g) with g = clamp(1 − prᵢ/((1+ε)·cRatioᵢ), ±1) —
			// Young's marginal-price comparison, packing cost against
			// covering benefit UNNORMALIZED (both are gradients of the
			// smoothed potentials, so they share the instance's scale).
			// Positive (grow) below the price threshold, negative
			// (shrink) above, saturating at one η either way. A
			// coordinate with no covering benefit only ever shrinks.
			for i := 0; i < n; i++ {
				if r.frozen[i] {
					continue
				}
				g := -1.0
				if benefit := (1 + eps) * cRatio[i]; benefit > 0 {
					g = 1 - pr[i]/benefit
					if g > 1 {
						g = 1
					} else if g < -1 {
						g = -1
					}
				}
				b = append(b, i)
				mults = append(mults, math.Exp(aloEta*g))
			}
		} else {
			// B = {i : packing cost ≤ (1+ε)·relative covering benefit}.
			for i := 0; i < n; i++ {
				if r.frozen[i] {
					continue
				}
				if pr[i] <= (1+eps)*cRatio[i]/meanC {
					b = append(b, i)
					mults = append(mults, 1+prm.Alpha)
				}
			}
			if len(b) == 0 {
				// Fallback: push the single best benefit/cost coordinate
				// so progress never stalls entirely.
				best, arg := 0.0, -1
				for i := 0; i < n; i++ {
					if r.frozen[i] || pr[i] <= 0 {
						continue
					}
					if ratio := cRatio[i] / pr[i]; ratio > best {
						best, arg = ratio, i
					}
				}
				if arg >= 0 {
					b = append(b, arg)
					mults = append(mults, 1+prm.Alpha)
				}
			}
		}
		if len(b) == 0 {
			break // every coordinate frozen or useless: stuck
		}
		for j, i := range b {
			m, err := r.step(i, mults[j])
			if err != nil {
				return nil, err
			}
			mults[j] = m
		}
		if err := orc.UpdateMults(b, mults, r.x); err != nil {
			return nil, err
		}
	}

	res.Iterations = t
	res.Capped = r.capped
	res.X = matrix.VecClone(r.x)
	p.Cover.MulVecTo(cx, r.x)
	res.MinCoverage = matrix.VecMin(cx)
	lam, err := core.LambdaMaxPsi(p.Pack, r.x)
	if err != nil {
		return nil, err
	}
	res.LambdaMax = lam
	if res.MinCoverage >= 1-eps && res.LambdaMax <= 1+10*eps {
		res.Status = StatusFeasible
	}
	return res, nil
}

// warmUsable reports whether a warm-start vector is finite and
// nonnegative throughout (shape is checked by the caller).
func warmUsable(ws []float64) bool {
	for _, v := range ws {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

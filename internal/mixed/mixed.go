// Package mixed implements the extension the paper's conclusion (§5)
// poses as future work and attributes to Jain–Yao 2012: positive SDPs
// with a matrix packing side and DIAGONAL covering constraints,
//
//	find x ≥ 0 with  Σᵢ xᵢAᵢ ≼ I   (matrix packing)
//	            and  C·x ≥ 1       (entrywise covering, C ≥ 0, d-by-n).
//
// As the paper notes, packing conditions between diagonal matrices are
// equivalent to pointwise conditions on the diagonal entries, so this
// class is "positive covering LP constraints + one matrix packing
// constraint" — the natural first extension beyond pure packing.
//
// The algorithm couples Algorithm 3.1's matrix soft-max packing ratios
// pᵢ = exp(Ψ)•Aᵢ/Tr[exp(Ψ)] with Young-style soft-min covering ratios
// cᵢ = Σⱼ e^{−(Cx)ⱼ}Cⱼᵢ / Σⱼ e^{−(Cx)ⱼ}·c̄ and multiplies the
// coordinates whose packing cost is small relative to their covering
// benefit. The output is always VERIFIED: Solve reports a bicriteria
// point (covering within 1−ε, packing within 1+O(ε)) only after
// checking both sides numerically, and returns StatusInconclusive
// otherwise — it never claims an unverified answer.
package mixed

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/matrix"
)

// Problem is a mixed packing/covering instance.
type Problem struct {
	// Pack holds the packing constraints Aᵢ (dense or factored).
	Pack core.ConstraintSet
	// Cover is the nonnegative d-by-n covering matrix (rows are
	// covering constraints over the same variables).
	Cover *matrix.Dense
}

// NewProblem validates shapes and signs.
func NewProblem(pack core.ConstraintSet, cover *matrix.Dense) (*Problem, error) {
	if pack == nil || cover == nil {
		return nil, errors.New("mixed: nil inputs")
	}
	if cover.C != pack.N() {
		return nil, fmt.Errorf("mixed: covering matrix has %d columns, want n=%d", cover.C, pack.N())
	}
	for i, v := range cover.Data {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("mixed: covering entry %d = %v invalid", i, v)
		}
	}
	// Every covering row needs at least one positive entry or the row
	// is unsatisfiable.
	for j := 0; j < cover.R; j++ {
		row := cover.Row(j)
		ok := false
		for _, v := range row {
			if v > 0 {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("mixed: covering row %d is all zero (unsatisfiable)", j)
		}
	}
	return &Problem{Pack: pack, Cover: cover}, nil
}

// Status labels the solve outcome.
type Status int

const (
	// StatusFeasible: x satisfies C·x ≥ (1−ε)·1 and λ_max(Σ xᵢAᵢ) ≤ 1+10ε,
	// both verified numerically.
	StatusFeasible Status = iota
	// StatusInconclusive: the iteration budget ran out without a
	// verified bicriteria point. The result still carries the best
	// iterate and its measured violations.
	StatusInconclusive
)

// String implements fmt.Stringer.
func (s Status) String() string {
	if s == StatusFeasible {
		return "feasible"
	}
	return "inconclusive"
}

// Result reports a mixed solve.
type Result struct {
	Status Status
	// X is the final iterate.
	X []float64
	// MinCoverage is min_j (Cx)_j (want ≥ 1−ε).
	MinCoverage float64
	// LambdaMax is λ_max(Σ xᵢAᵢ), verified (want ≤ 1+10ε).
	LambdaMax float64
	// Iterations executed.
	Iterations int
}

// Options configure Solve.
type Options struct {
	// MaxIter caps iterations; 0 derives the Algorithm 3.1 budget R.
	MaxIter int
	// Seed drives factored-oracle randomness.
	Seed uint64
	// Oracle selects the packing primitive (as in core.Options).
	Oracle core.OracleKind
}

// Solve searches for a bicriteria-feasible point of the mixed system at
// accuracy eps ∈ (0, 1).
func Solve(p *Problem, eps float64, opts Options) (*Result, error) {
	if eps <= 0 || eps >= 1 || math.IsNaN(eps) {
		return nil, fmt.Errorf("mixed: eps = %v out of (0, 1)", eps)
	}
	n := p.Pack.N()
	d := p.Cover.R
	prm, err := core.ParamsFor(n, max(p.Pack.Dim(), d), eps)
	if err != nil {
		return nil, err
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = prm.R
	}

	orc, err := core.NewRatioOracle(p.Pack, core.Options{
		Oracle:    opts.Oracle,
		Seed:      opts.Seed,
		SketchEps: eps / 2,
	})
	if err != nil {
		return nil, err
	}

	// Start from the packing-safe point x⁰ᵢ = 1/(n·Tr[Aᵢ]).
	x := make([]float64, n)
	frozen := make([]bool, n)
	for i := 0; i < n; i++ {
		tr := p.Pack.Trace(i)
		if tr <= 0 {
			// A zero packing constraint exerts no packing pressure;
			// give it a covering-scaled start instead.
			x[i] = 0
			frozen[i] = false
			continue
		}
		x[i] = 1 / (float64(n) * tr)
	}
	if err := orc.Init(x); err != nil {
		return nil, err
	}

	cx := make([]float64, d)
	w := make([]float64, d)
	cRatio := make([]float64, n)
	res := &Result{Status: StatusInconclusive}
	var b []int

	t := 0
	for t < maxIter {
		t++
		pr, err := orc.Ratios()
		if err != nil {
			return nil, err
		}
		// Covering soft-min weights on the shortfall, shift-stabilized.
		p.Cover.MulVecTo(cx, x)
		minCx := matrix.VecMin(cx)
		if minCx >= 1 {
			break // fully covered; verify below
		}
		for j := 0; j < d; j++ {
			w[j] = math.Exp(-(cx[j] - minCx))
		}
		trW := matrix.VecSum(w)
		for i := range cRatio {
			cRatio[i] = 0
		}
		for j := 0; j < d; j++ {
			wj := w[j] / trW
			if wj == 0 {
				continue
			}
			row := p.Cover.Row(j)
			for i := 0; i < n; i++ {
				cRatio[i] += wj * row[i]
			}
		}
		// Normalize the covering benefit to a dimensionless ratio
		// against its own mean so it compares with pᵢ (which averages
		// to ~1 by construction).
		meanC := matrix.VecSum(cRatio) / float64(n)
		if meanC <= 0 {
			break // nothing helps coverage: stuck
		}

		// B = {i : packing cost ≤ (1+ε)·relative covering benefit}.
		b = b[:0]
		for i := 0; i < n; i++ {
			if frozen[i] {
				continue
			}
			if pr[i] <= (1+eps)*cRatio[i]/meanC {
				b = append(b, i)
			}
		}
		if len(b) == 0 {
			// Fallback: push the single best benefit/cost coordinate so
			// progress never stalls entirely.
			best, arg := 0.0, -1
			for i := 0; i < n; i++ {
				if frozen[i] || pr[i] <= 0 {
					continue
				}
				if ratio := cRatio[i] / pr[i]; ratio > best {
					best, arg = ratio, i
				}
			}
			if arg < 0 {
				break
			}
			b = append(b, arg)
		}
		for _, i := range b {
			if x[i] == 0 {
				x[i] = 1 / (float64(n) * math.Max(p.Pack.Trace(i), 1))
			}
			x[i] *= 1 + prm.Alpha
		}
		if err := orc.Update(b, prm.Alpha, x); err != nil {
			return nil, err
		}
	}

	res.Iterations = t
	res.X = matrix.VecClone(x)
	p.Cover.MulVecTo(cx, x)
	res.MinCoverage = matrix.VecMin(cx)
	lam, err := core.LambdaMaxPsi(p.Pack, x)
	if err != nil {
		return nil, err
	}
	res.LambdaMax = lam
	if res.MinCoverage >= 1-eps && res.LambdaMax <= 1+10*eps {
		res.Status = StatusFeasible
	}
	return res, nil
}

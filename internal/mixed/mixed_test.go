package mixed

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/matrix"
)

// feasibleInstance builds a mixed instance with a known interior point:
// orthogonal rank-1 packing constraints (OPT = Σ 1/‖vᵢ‖²) and a
// covering matrix scaled so that x = 0.5·x*_pack covers everything with
// margin. Then a bicriteria point certainly exists.
func feasibleInstance(t *testing.T, n, m, d int, rng *rand.Rand) (*Problem, []float64) {
	t.Helper()
	inst, err := gen.OrthogonalRankOne(n, m, rng)
	if err != nil {
		t.Fatal(err)
	}
	set, err := core.NewDenseSet(inst.A)
	if err != nil {
		t.Fatal(err)
	}
	// Reference point: xᵢ = 0.5/Tr[Aᵢ] (packing-feasible with λmax 0.5).
	xref := make([]float64, n)
	for i := 0; i < n; i++ {
		xref[i] = 0.5 / set.Trace(i)
	}
	// Random nonneg covering rows, then scale each row j so that
	// (C·xref)_j = 1.5 (margin).
	c := matrix.New(d, n)
	for j := 0; j < d; j++ {
		row := c.Row(j)
		for i := range row {
			if rng.Float64() < 0.7 {
				row[i] = rng.Float64()
			}
		}
		row[rng.IntN(n)] += 0.5
		dot := matrix.VecDot(row, xref)
		matrix.VecScale(row, 1.5/dot, row)
	}
	p, err := NewProblem(set, c)
	if err != nil {
		t.Fatal(err)
	}
	return p, xref
}

func TestNewProblemValidation(t *testing.T) {
	set, err := core.NewDenseSet([]*matrix.Dense{matrix.Identity(2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewProblem(nil, matrix.New(1, 1)); err == nil {
		t.Fatal("nil pack accepted")
	}
	if _, err := NewProblem(set, matrix.New(2, 3)); err == nil {
		t.Fatal("column mismatch accepted")
	}
	neg := matrix.New(1, 1)
	neg.Set(0, 0, -1)
	if _, err := NewProblem(set, neg); err == nil {
		t.Fatal("negative covering accepted")
	}
	if _, err := NewProblem(set, matrix.New(1, 1)); err == nil {
		t.Fatal("all-zero covering row accepted")
	}
}

func TestSolveFeasibleInstance(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	p, _ := feasibleInstance(t, 5, 8, 4, rng)
	res, err := Solve(p, 0.15, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusFeasible {
		t.Fatalf("status = %v (coverage %v, λmax %v) want feasible", res.Status, res.MinCoverage, res.LambdaMax)
	}
	// Verified bicriteria guarantees.
	if res.MinCoverage < 1-0.15 {
		t.Fatalf("coverage %v below 1−ε", res.MinCoverage)
	}
	if res.LambdaMax > 1+10*0.15 {
		t.Fatalf("λmax %v above 1+10ε", res.LambdaMax)
	}
	// Re-verify both sides independently of the solver's own report.
	cx := p.Cover.MulVec(res.X)
	if matrix.VecMin(cx) < 1-0.15-1e-9 {
		t.Fatal("independent coverage check failed")
	}
	lam, err := core.LambdaMaxPsi(p.Pack, res.X)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lam-res.LambdaMax) > 1e-6*(1+lam) {
		t.Fatal("reported λmax disagrees with independent check")
	}
}

func TestSolveInfeasibleStaysHonest(t *testing.T) {
	// Packing OPT for A = I is 1 (single constraint); demanding
	// coverage 10·x ≥ 1 with C = 0.01 (so x ≥ 100) is wildly
	// infeasible. The solver must NOT report feasible.
	set, err := core.NewDenseSet([]*matrix.Dense{matrix.Identity(3)})
	if err != nil {
		t.Fatal(err)
	}
	c := matrix.New(1, 1)
	c.Set(0, 0, 0.01)
	p, err := NewProblem(set, c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(p, 0.2, Options{MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == StatusFeasible {
		t.Fatalf("infeasible instance reported feasible: coverage %v λmax %v", res.MinCoverage, res.LambdaMax)
	}
}

func TestSolveDiagonalMixedMatchesLP(t *testing.T) {
	// Diagonal packing + covering — the pure LP case of the class. A
	// point satisfying both exists by construction.
	set, err := core.NewDenseSet([]*matrix.Dense{
		matrix.Diag([]float64{0.5, 0}),
		matrix.Diag([]float64{0, 0.5}),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Covering: x₁ + x₂ ≥ 1 (satisfied at x=(1,1), which has λmax 0.5).
	c := matrix.FromRows([][]float64{{0.5, 0.5}})
	p, err := NewProblem(set, c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(p, 0.1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusFeasible {
		t.Fatalf("status %v (coverage %v λmax %v)", res.Status, res.MinCoverage, res.LambdaMax)
	}
}

func TestSolveValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	p, _ := feasibleInstance(t, 3, 5, 2, rng)
	if _, err := Solve(p, 0, Options{}); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := Solve(p, 1.2, Options{}); err == nil {
		t.Fatal("eps>1 accepted")
	}
}

func TestStatusString(t *testing.T) {
	if StatusFeasible.String() != "feasible" || StatusInconclusive.String() != "inconclusive" {
		t.Fatal("Status.String wrong")
	}
}

func TestSolveFactoredPath(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	inst, err := gen.OrthogonalRankOne(4, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	dset, err := core.NewDenseSet(inst.A)
	if err != nil {
		t.Fatal(err)
	}
	fset, err := dset.Factorize(1e-12)
	if err != nil {
		t.Fatal(err)
	}
	xref := make([]float64, 4)
	for i := range xref {
		xref[i] = 0.5 / fset.Trace(i)
	}
	c := matrix.New(2, 4)
	for j := 0; j < 2; j++ {
		row := c.Row(j)
		for i := range row {
			row[i] = 0.5 + rng.Float64()
		}
		matrix.VecScale(row, 1.5/matrix.VecDot(row, xref), row)
	}
	p, err := NewProblem(fset, c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(p, 0.2, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusFeasible {
		t.Fatalf("factored mixed solve failed: coverage %v λmax %v after %d iters",
			res.MinCoverage, res.LambdaMax, res.Iterations)
	}
}

package mixed

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
)

// coverHungry builds the freeze-rule regression instance: a
// covering-dominant system where the covering row rewards the spike
// coordinate (high λ_max per unit of coverage) far more per round than
// the spread coordinate, so without the coordinate cap the dynamics
// multiply the spike straight through the packing envelope. Feasible
// via the spread coordinate: x = (1.1, 6.7) has coverage 1.0 and
// λ_max = 1.1 ≤ 1+10ε at ε = 0.1.
//
//	A₁ = diag(1, 0, …, 0)        (spike: λ_max = Tr = 1)
//	A₂ = diag(0, 0.1, …, 0.1)    (spread over 10 axes: λ_max = 0.1, Tr = 1)
//	C  = [0.3  0.1],  ε = 0.1
func coverHungry(t *testing.T) *Problem {
	t.Helper()
	const m = 11
	a1 := matrix.New(m, m)
	a1.Set(0, 0, 1)
	a2 := matrix.New(m, m)
	for k := 1; k < m; k++ {
		a2.Set(k, k, 0.1)
	}
	set, err := core.NewDenseSet([]*matrix.Dense{a1, a2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProblem(set, matrix.FromRows([][]float64{{0.3, 0.1}}))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// legacyUncapped replays the pre-fix dynamics on a diagonal instance:
// the same soft-max/soft-min coupling but with no coordinate cap (the
// `frozen` array was allocated and checked yet never set). Returns the
// final λ_max. Kept as executable documentation that coverHungry
// actually exercised the bug: the uncapped run blows past 1+10ε.
func legacyUncapped(p *Problem, eps float64, maxIter int) float64 {
	n := p.Pack.N()
	m := p.Pack.Dim()
	d := p.Cover.R
	prm, err := core.ParamsFor(n, max(m, d), eps)
	if err != nil {
		panic(err)
	}
	// Diagonal instances only: Ψ and the ratios in closed form.
	diag := make([][]float64, n)
	unit := make([]float64, n)
	for i := range diag {
		diag[i] = make([]float64, m)
		for k := range unit {
			unit[k] = 0
		}
		unit[i] = 1
		p.Pack.ApplyPsi(unit, onesVec(m), diag[i])
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = 1 / (float64(n) * p.Pack.Trace(i))
	}
	cx := make([]float64, d)
	psi := make([]float64, m)
	for t := 0; t < maxIter; t++ {
		for k := 0; k < m; k++ {
			psi[k] = 0
			for i := 0; i < n; i++ {
				psi[k] += x[i] * diag[i][k]
			}
		}
		shift := matrix.VecMax(psi)
		trExp := 0.0
		for k := 0; k < m; k++ {
			trExp += math.Exp(psi[k] - shift)
		}
		p.Cover.MulVecTo(cx, x)
		if matrix.VecMin(cx) >= 1 {
			break
		}
		minCx := matrix.VecMin(cx)
		wsum := 0.0
		wrow := make([]float64, d)
		for j := 0; j < d; j++ {
			wrow[j] = math.Exp(-(cx[j] - minCx))
			wsum += wrow[j]
		}
		cRatio := make([]float64, n)
		for j := 0; j < d; j++ {
			for i := 0; i < n; i++ {
				cRatio[i] += wrow[j] / wsum * p.Cover.Row(j)[i]
			}
		}
		meanC := matrix.VecSum(cRatio) / float64(n)
		if meanC <= 0 {
			break
		}
		moved := false
		for i := 0; i < n; i++ {
			pr := 0.0
			for k := 0; k < m; k++ {
				pr += diag[i][k] * math.Exp(psi[k]-shift)
			}
			pr /= trExp
			if pr <= (1+eps)*cRatio[i]/meanC {
				x[i] *= 1 + prm.Alpha
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	for k := 0; k < m; k++ {
		psi[k] = 0
		for i := 0; i < n; i++ {
			psi[k] += x[i] * diag[i][k]
		}
	}
	return matrix.VecMax(psi)
}

func onesVec(m int) []float64 {
	v := make([]float64, m)
	for i := range v {
		v[i] = 1
	}
	return v
}

// TestFreezeRuleRegression is the tentpole regression: the uncapped
// pre-fix dynamics push the spike coordinate past the 1+10ε packing
// envelope on a covering-dominant instance; the repaired freeze rule
// clamps it at (1+ε)/λ_max(A₁) and the solve terminates StatusFeasible
// with the cap active.
func TestFreezeRuleRegression(t *testing.T) {
	const eps = 0.1
	p := coverHungry(t)

	// The bug, demonstrated: without the cap, the run ends with
	// λ_max > 1+10ε (the envelope is 2.0; the uncapped trajectory lands
	// near 2.5).
	if lam := legacyUncapped(p, eps, 2_000_000); lam <= 1+10*eps {
		t.Fatalf("instance no longer covering-dominant: uncapped λ_max = %v ≤ %v", lam, 1+10*eps)
	}

	res, err := Solve(p, eps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusFeasible {
		t.Fatalf("status = %v (coverage %v, λmax %v) want feasible", res.Status, res.MinCoverage, res.LambdaMax)
	}
	if res.Capped < 1 {
		t.Fatalf("Capped = %d, want the spike coordinate frozen at its cap", res.Capped)
	}
	if res.LambdaMax > 1+10*eps {
		t.Fatalf("λmax %v above 1+10ε", res.LambdaMax)
	}
	if res.MinCoverage < 1-eps {
		t.Fatalf("coverage %v below 1−ε", res.MinCoverage)
	}
	// The frozen coordinate sits exactly on the Algorithm 3.1 cap
	// (1+ε)/λ_max(A₁) = 1.1.
	if math.Abs(res.X[0]-1.1) > 1e-9 {
		t.Fatalf("spike coordinate %v, want clamped at 1.1", res.X[0])
	}
}

// TestZeroTraceCoveringScaledStart pins the documented covering-scaled
// start: a zero packing constraint now starts at x⁰ᵢ = 1/(n·max_j Cⱼᵢ)
// (instead of 0 plus a lazy init inside the loop), and a coordinate
// that is useless on both sides stays frozen at 0.
func TestZeroTraceCoveringScaledStart(t *testing.T) {
	a1 := matrix.Diag([]float64{0.5, 0})
	zero := matrix.New(2, 2)
	zero2 := matrix.New(2, 2)
	set, err := core.NewDenseSet([]*matrix.Dense{a1, zero, zero2})
	if err != nil {
		t.Fatal(err)
	}
	// Coordinate 2 covers cheaply with no packing cost; coordinate 3
	// has zero trace AND a zero covering column (useless).
	c := matrix.FromRows([][]float64{{0.1, 2, 0}})
	p, err := NewProblem(set, c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(p, 0.1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusFeasible {
		t.Fatalf("status = %v (coverage %v, λmax %v)", res.Status, res.MinCoverage, res.LambdaMax)
	}
	if res.X[1] <= 0 {
		t.Fatalf("zero-trace covering coordinate never moved: x = %v", res.X)
	}
	if res.X[2] != 0 {
		t.Fatalf("useless coordinate moved: x[2] = %v", res.X[2])
	}
	// The covering-scaled start is the floor of the multiplicative
	// trajectory: x₂ can only have grown from 1/(n·max_j Cⱼ₂) = 1/6.
	if res.X[1] < 1.0/6-1e-12 {
		t.Fatalf("x[1] = %v below its covering-scaled start 1/6", res.X[1])
	}
}

// TestSolveEngines runs both engines (and Auto resolution) over the
// standard feasible instance: identical verified guarantees, distinct
// dynamics, engine name reported.
func TestSolveEngines(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	p, _ := feasibleInstance(t, 5, 8, 4, rng)
	mmw, err := Solve(p, 0.15, Options{Engine: core.EngineMMW})
	if err != nil {
		t.Fatal(err)
	}
	alo, err := Solve(p, 0.15, Options{Engine: core.EngineALO})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*Result{mmw, alo} {
		if res.Status != StatusFeasible {
			t.Fatalf("engine %s: status %v (coverage %v λmax %v)", res.Engine, res.Status, res.MinCoverage, res.LambdaMax)
		}
	}
	if mmw.Engine != core.EngineNameMMW || alo.Engine != core.EngineNameALO {
		t.Fatalf("engine names %q/%q", mmw.Engine, alo.Engine)
	}
	// Auto resolves by the same rule Decision uses: dense n=5 < 8 stays
	// on MMW even at tight ε.
	auto, err := Solve(p, 0.09, Options{Engine: core.EngineAuto, MaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Engine != core.EngineNameMMW {
		t.Fatalf("auto on small dense resolved to %q, want mmw", auto.Engine)
	}
	if _, err := Solve(p, 0.15, Options{Engine: core.EngineKind(99)}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestSolveEngineALOOnRegression checks the cap also protects the ALO
// dynamics (every live coordinate moves every step, so the spike grows
// even faster without it).
func TestSolveEngineALOOnRegression(t *testing.T) {
	p := coverHungry(t)
	res, err := Solve(p, 0.1, Options{Engine: core.EngineALO})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusFeasible {
		t.Fatalf("status = %v (coverage %v, λmax %v)", res.Status, res.MinCoverage, res.LambdaMax)
	}
	if res.LambdaMax > 2 {
		t.Fatalf("λmax %v above 1+10ε", res.LambdaMax)
	}
}

// TestSolveWarmStart exercises the warm-start guard: a previous
// solution re-covers immediately; malformed vectors fall back to the
// bitwise-identical cold run.
func TestSolveWarmStart(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	p, _ := feasibleInstance(t, 5, 8, 4, rng)
	cold, err := Solve(p, 0.15, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Status != StatusFeasible {
		t.Fatalf("cold status %v", cold.Status)
	}
	warm, err := Solve(p, 0.15, Options{WarmStart: cold.X})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted {
		t.Fatal("usable warm start not adopted")
	}
	if warm.Status != StatusFeasible {
		t.Fatalf("warm status %v", warm.Status)
	}
	if warm.Iterations > cold.Iterations {
		t.Fatalf("warm used %d iterations, cold %d", warm.Iterations, cold.Iterations)
	}

	for _, bad := range [][]float64{
		{1, 2},                    // wrong length
		{-1, 0.1, 0.1, 0.1, 0.1},  // negative
		{math.NaN(), 1, 1, 1, 1},  // non-finite
		{math.Inf(1), 1, 1, 1, 1}, // non-finite
	} {
		res, err := Solve(p, 0.15, Options{WarmStart: bad})
		if err != nil {
			t.Fatal(err)
		}
		if res.WarmStarted {
			t.Fatalf("bad warm start %v adopted", bad)
		}
		if res.Iterations != cold.Iterations || res.Status != cold.Status {
			t.Fatalf("fallback run differs from cold run")
		}
		for i := range res.X {
			if math.Float64bits(res.X[i]) != math.Float64bits(cold.X[i]) {
				t.Fatalf("fallback X[%d] not bitwise cold", i)
			}
		}
	}
}

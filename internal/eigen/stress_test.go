package eigen

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/matrix"
)

// Larger random matrices: reconstruction, orthogonality, and trace
// identities must survive at n = 64.
func TestSymEigenStress64(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 102))
	n := 64
	a := randSym(n, rng)
	dec, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	rec := dec.Reconstruct()
	if !matrix.ApproxEqual(rec, a, 1e-8*float64(n)) {
		t.Fatal("reconstruction failed at n=64")
	}
	vtv := matrix.MulATB(dec.Vectors, dec.Vectors, nil)
	if !matrix.ApproxEqual(vtv, matrix.Identity(n), 1e-9) {
		t.Fatal("orthogonality lost at n=64")
	}
	sum := 0.0
	for _, v := range dec.Values {
		sum += v
	}
	if math.Abs(sum-a.Trace()) > 1e-8*float64(n) {
		t.Fatal("trace identity failed at n=64")
	}
	// Values must be sorted descending.
	for i := 1; i < n; i++ {
		if dec.Values[i] > dec.Values[i-1]+1e-12 {
			t.Fatal("eigenvalues not sorted descending")
		}
	}
}

// Tightly clustered spectrum: eigenvalues within 1e-10 of each other.
func TestSymEigenClusteredSpectrum(t *testing.T) {
	n := 10
	d := make([]float64, n)
	for i := range d {
		d[i] = 1 + 1e-10*float64(i)
	}
	// Conjugate by a random rotation so the clustering is hidden.
	rng := rand.New(rand.NewPCG(103, 104))
	q := randomOrthogonal(n, rng)
	a := matrix.MulAB(matrix.MulAB(q, matrix.Diag(d), nil), q.T(), nil)
	a.Symmetrize()
	vals, err := SymEigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if math.Abs(v-1) > 1e-8 {
			t.Fatalf("clustered eigenvalue %v drifted from 1", v)
		}
	}
}

// Wide dynamic range: eigenvalues spanning 12 orders of magnitude.
func TestSymEigenWideRange(t *testing.T) {
	d := []float64{1e6, 1e3, 1, 1e-3, 1e-6}
	rng := rand.New(rand.NewPCG(105, 106))
	q := randomOrthogonal(len(d), rng)
	a := matrix.MulAB(matrix.MulAB(q, matrix.Diag(d), nil), q.T(), nil)
	a.Symmetrize()
	vals, err := SymEigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range d {
		// Relative accuracy degrades toward the small end (absolute
		// errors scale with ‖A‖); check each against ‖A‖-scaled slack.
		if math.Abs(vals[i]-want) > 1e-10*d[0] {
			t.Fatalf("eigenvalue %d = %v want %v", i, vals[i], want)
		}
	}
}

// Negative definite input: eigen handles arbitrary symmetric matrices.
func TestSymEigenNegativeDefinite(t *testing.T) {
	rng := rand.New(rand.NewPCG(107, 108))
	a := randPSD(6, 6, rng)
	matrix.Scale(a, -1, a)
	vals, err := SymEigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] > 1e-10 {
		t.Fatalf("negative definite matrix has positive λmax %v", vals[0])
	}
}

func TestLanczosIllConditioned(t *testing.T) {
	// λmax detection must work when the top eigenvalue barely separates.
	d := []float64{1.000001, 1, 1, 0.5, 0.1}
	rng := rand.New(rand.NewPCG(109, 110))
	q := randomOrthogonal(len(d), rng)
	a := matrix.MulAB(matrix.MulAB(q, matrix.Diag(d), nil), q.T(), nil)
	a.Symmetrize()
	got, err := LanczosMax(denseApply(a), len(d), LanczosOpts{MaxIter: 64, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.000001) > 1e-6 {
		t.Fatalf("Lanczos λmax = %v want 1.000001", got)
	}
}

// randomOrthogonal builds an orthogonal matrix by Gram–Schmidt on a
// random Gaussian matrix.
func randomOrthogonal(n int, rng *rand.Rand) *matrix.Dense {
	q := matrix.New(n, n)
	for j := 0; j < n; j++ {
		col := make([]float64, n)
		for {
			for i := range col {
				col[i] = rng.NormFloat64()
			}
			for k := 0; k < j; k++ {
				prev := q.Col(k)
				matrix.VecAXPY(col, -matrix.VecDot(col, prev), prev)
			}
			if matrix.Normalize(col) > 1e-8 {
				break
			}
		}
		for i := range col {
			q.Set(i, j, col[i])
		}
	}
	return q
}

// Package eigen implements a symmetric eigensolver from scratch:
// Householder reduction to tridiagonal form followed by the implicit-
// shift QL algorithm, plus Lanczos and power iteration for extremal
// eigenvalues of implicitly represented operators.
//
// The solver substrate needs eigendecompositions for three jobs in the
// paper's pipeline: exact matrix exponentials exp(Ψ) on the dense path,
// the C^{-1/2} normalization of Appendix A, and λ_max certificate
// verification of dual solutions (Σ xᵢAᵢ ≼ I).
package eigen

import (
	"errors"
	"math"
)

// ErrNoConvergence is returned when the QL iteration exceeds its
// iteration budget, which for float64 symmetric input essentially never
// happens.
var ErrNoConvergence = errors.New("eigen: QL iteration failed to converge")

// tred2 reduces the symmetric matrix stored row-major in a (n-by-n) to
// tridiagonal form by Householder similarity transformations.
// On return d holds the diagonal, e the subdiagonal (e[0] is spare), and
// a is overwritten with the orthogonal matrix Z effecting the reduction
// when accumulate is true (column j of a is the j-th basis image).
// When accumulate is false, a is left holding Householder debris and
// only d, e are meaningful. Classic EISPACK/NR scheme, zero-indexed.
func tred2(a []float64, n int, d, e []float64, accumulate bool) {
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		h, scale := 0.0, 0.0
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(a[i*n+k])
			}
			if scale == 0 {
				e[i] = a[i*n+l]
			} else {
				for k := 0; k <= l; k++ {
					a[i*n+k] /= scale
					h += a[i*n+k] * a[i*n+k]
				}
				f := a[i*n+l]
				g := math.Sqrt(h)
				if f >= 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				a[i*n+l] = f - g
				f = 0
				for j := 0; j <= l; j++ {
					if accumulate {
						a[j*n+i] = a[i*n+j] / h
					}
					g := 0.0
					for k := 0; k <= j; k++ {
						g += a[j*n+k] * a[i*n+k]
					}
					for k := j + 1; k <= l; k++ {
						g += a[k*n+j] * a[i*n+k]
					}
					e[j] = g / h
					f += e[j] * a[i*n+j]
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f := a[i*n+j]
					g := e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						a[j*n+k] -= f*e[k] + g*a[i*n+k]
					}
				}
			}
		} else {
			e[i] = a[i*n+l]
		}
		d[i] = h
	}
	d[0] = 0
	e[0] = 0
	if !accumulate {
		for i := 0; i < n; i++ {
			d[i] = a[i*n+i]
		}
		return
	}
	for i := 0; i < n; i++ {
		l := i - 1
		if d[i] != 0 {
			for j := 0; j <= l; j++ {
				g := 0.0
				for k := 0; k <= l; k++ {
					g += a[i*n+k] * a[k*n+j]
				}
				for k := 0; k <= l; k++ {
					a[k*n+j] -= g * a[k*n+i]
				}
			}
		}
		d[i] = a[i*n+i]
		a[i*n+i] = 1
		for j := 0; j <= l; j++ {
			a[j*n+i] = 0
			a[i*n+j] = 0
		}
	}
}

// tqli diagonalizes a symmetric tridiagonal matrix with diagonal d and
// subdiagonal e[1..n-1] (as produced by tred2) using the QL algorithm
// with implicit shifts. d is overwritten with eigenvalues (unsorted).
// If z is non-nil (n-by-n row-major), its columns are rotated so that
// column j becomes the eigenvector of d[j]; pass the tred2 output to get
// eigenvectors of the original matrix, or the identity for eigenvectors
// of the tridiagonal matrix itself.
func tqli(d, e []float64, n int, z []float64) error {
	if n == 1 {
		return nil
	}
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	const maxIter = 50
	for l := 0; l < n; l++ {
		iter := 0
		for {
			var m int
			for m = l; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m])+dd == dd {
					break
				}
			}
			if m == l {
				break
			}
			if iter == maxIter {
				return ErrNoConvergence
			}
			iter++
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c, p := 1.0, 1.0, 0.0
			underflow := false
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					underflow = true
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				if z != nil {
					for k := 0; k < n; k++ {
						f := z[k*n+i+1]
						z[k*n+i+1] = s*z[k*n+i] + c*f
						z[k*n+i] = c*z[k*n+i] - s*f
					}
				}
			}
			if underflow {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}

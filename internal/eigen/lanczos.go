package eigen

import (
	"errors"
	"math"
	"math/rand/v2"

	"repro/internal/matrix"
	"repro/internal/work"
)

// LanczosOpts configures LanczosMax.
type LanczosOpts struct {
	// MaxIter bounds the Krylov dimension; 0 means min(dim, 128).
	MaxIter int
	// Tol is the relative convergence tolerance on the top Ritz value;
	// 0 means 1e-10.
	Tol float64
	// Rng provides the random start vector; nil means a fixed-seed PCG,
	// keeping results deterministic.
	Rng *rand.Rand
	// WS, when non-nil, supplies reusable storage for the Krylov basis
	// and all scratch vectors, making repeated calls allocation-free
	// after the first. The same WS must not be used concurrently.
	WS *LanczosWS
}

// LanczosWS is the reusable storage of one Lanczos run: the basis
// vectors of the Krylov space, the tridiagonal coefficients, and the
// CGS2 projection scratch. A zero LanczosWS is ready to use; it grows
// to the largest (dim, maxIter) seen and is reused thereafter. The
// factored oracles keep one per oracle so the per-iteration λ_max(Ψ)
// refresh stops allocating.
type LanczosWS struct {
	v, w   []float64
	basis  [][]float64 // backing rows, length dim each, grown on demand
	alphas []float64
	betas  []float64
	coeffs []float64
	td, te []float64 // tridiagonal eigenvalue scratch
}

// ensure sizes the workspace for a run of at most maxIter iterations in
// dimension dim.
func (ws *LanczosWS) ensure(dim, maxIter int) {
	if len(ws.v) != dim {
		ws.v = make([]float64, dim)
		ws.w = make([]float64, dim)
		ws.basis = ws.basis[:0] // rows have the wrong length now
	}
	if cap(ws.basis) < maxIter {
		basis := make([][]float64, len(ws.basis), maxIter)
		copy(basis, ws.basis)
		ws.basis = basis
	}
	if cap(ws.alphas) < maxIter {
		ws.alphas = make([]float64, 0, maxIter)
		ws.betas = make([]float64, 0, maxIter)
		ws.coeffs = make([]float64, maxIter)
		ws.td = make([]float64, maxIter)
		ws.te = make([]float64, maxIter)
	}
}

// Prewarm sizes the workspace for (dim, maxIter) and installs every
// basis row up front, drawn from pool, so later runs never allocate no
// matter how deep their Krylov spaces grow — the guarantee the
// zero-allocation oracle paths need (lazy row growth would otherwise
// allocate whenever a refresh converges slower than any before it).
// Hand the rows back with ReleaseBasis when the owning run retires; a
// nil pool degrades to plain allocation.
func (ws *LanczosWS) Prewarm(pool *work.Workspace, dim, maxIter int) {
	if dim <= 0 {
		return
	}
	if maxIter > dim {
		maxIter = dim
	}
	ws.ensure(dim, maxIter)
	for len(ws.basis) < maxIter {
		ws.basis = append(ws.basis, pool.Vec(dim))
	}
}

// ReleaseBasis returns every basis row to pool and empties the basis
// (rows grown lazily past the prewarm depth are pooled too). The
// workspace must not be mid-run.
func (ws *LanczosWS) ReleaseBasis(pool *work.Workspace) {
	for _, r := range ws.basis {
		pool.PutVec(r)
	}
	ws.basis = ws.basis[:0]
}

// row returns basis row j, allocating it on first use.
func (ws *LanczosWS) row(j, dim int) []float64 {
	if j < len(ws.basis) {
		return ws.basis[j]
	}
	r := make([]float64, dim)
	ws.basis = append(ws.basis, r)
	return r
}

// LanczosMax estimates the largest eigenvalue of the symmetric operator
// apply (out = A·in, dimension dim) using the Lanczos process with full
// reorthogonalization. It is the certificate checker for factored
// instances, where Σ xᵢ QᵢQᵢᵀ is available only as a matvec.
//
// For PSD operators the returned value is a lower bound on λ_max that
// converges rapidly (error decays exponentially in the iteration count
// for separated spectra). The caller should treat it as an estimate
// with relative accuracy around Tol.
func LanczosMax(apply func(in, out []float64), dim int, opts LanczosOpts) (float64, error) {
	if dim <= 0 {
		return 0, errors.New("eigen: LanczosMax: dimension must be positive")
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 128
	}
	if maxIter > dim {
		maxIter = dim
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	rng := opts.Rng
	if rng == nil {
		rng = rand.New(rand.NewPCG(0x1a2b3c4d, 0x5e6f7081))
	}
	ws := opts.WS
	if ws == nil {
		ws = &LanczosWS{}
	}
	ws.ensure(dim, maxIter)

	if dim == 1 {
		out := ws.w[:1]
		ws.v[0] = 1
		apply(ws.v[:1], out)
		return out[0], nil
	}

	v := ws.v
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	if matrix.Normalize(v) == 0 {
		return 0, errors.New("eigen: LanczosMax: degenerate start vector")
	}

	alphas := ws.alphas[:0]
	betas := ws.betas[:0]
	w := ws.w
	prev := math.Inf(-1)

	for j := 0; j < maxIter; j++ {
		bj := ws.row(j, dim)
		copy(bj, v)
		basis := ws.basis[:j+1]
		apply(v, w)
		alpha := matrix.VecDot(w, v)
		alphas = append(alphas, alpha)
		// Full reorthogonalization, batched: two classical Gram–Schmidt
		// sweeps (CGS2, numerically on par with modified GS against an
		// orthonormal basis) so each sweep is one parallel pass — all
		// projection coefficients first, then a single blocked update —
		// instead of a sequential AXPY chain per basis vector.
		reorthogonalize(w, basis, ws.coeffs[:j+1])
		reorthogonalize(w, basis, ws.coeffs[:j+1])
		beta := matrix.VecNorm2(w)
		lam, err := topRitz(alphas, betas, ws)
		if err != nil {
			return 0, err
		}
		scale := math.Max(1, math.Abs(lam))
		if beta <= 1e-14*scale {
			// Invariant subspace found: Ritz values are exact.
			return lam, nil
		}
		if j >= 2 && math.Abs(lam-prev) <= tol*scale {
			return lam, nil
		}
		prev = lam
		betas = append(betas, beta)
		matrix.VecScale(v, 1/beta, w)
	}
	return prev, nil
}

// reorthogonalize removes the components of w along every basis vector
// with one classical Gram–Schmidt sweep, as two fused passes: the
// projection coefficients come from VecMultiDot (w streamed once across
// four basis rows at a time, bit-identical to per-row VecDots), then the
// update is a single VecLinComb pass. Negation is exact (a sign-bit
// flip), so the coefficients match the old -VecDot loop bitwise. coeffs
// is caller scratch of length len(basis).
func reorthogonalize(w []float64, basis [][]float64, coeffs []float64) {
	matrix.VecMultiDot(coeffs, w, basis)
	for u := range coeffs {
		coeffs[u] = -coeffs[u]
	}
	matrix.VecLinComb(w, coeffs, basis)
}

// topRitz returns the largest eigenvalue of the Lanczos tridiagonal
// matrix with diagonal alphas and subdiagonal betas, using ws's
// tridiagonal scratch.
func topRitz(alphas, betas []float64, ws *LanczosWS) (float64, error) {
	n := len(alphas)
	sub := betas[:min(len(betas), n-1)]
	d := ws.td[:n]
	e := ws.te[:n]
	copy(d, alphas)
	// tqli expects the subdiagonal in e[1..n-1].
	e[0] = 0
	for i := 1; i < n; i++ {
		e[i] = sub[i-1]
	}
	if err := tqli(d, e, n, nil); err != nil {
		return 0, err
	}
	top := d[0]
	for _, v := range d[1:] {
		if v > top {
			top = v
		}
	}
	return top, nil
}

// PowerMax estimates the largest eigenvalue of the symmetric PSD
// operator apply by power iteration. Slower to converge than Lanczos
// but unconditionally simple; used as a cross-check in tests.
func PowerMax(apply func(in, out []float64), dim, iters int, rng *rand.Rand) (float64, error) {
	if dim <= 0 {
		return 0, errors.New("eigen: PowerMax: dimension must be positive")
	}
	if iters <= 0 {
		iters = 200
	}
	if rng == nil {
		rng = rand.New(rand.NewPCG(42, 43))
	}
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	matrix.Normalize(v)
	w := make([]float64, dim)
	lam := 0.0
	for k := 0; k < iters; k++ {
		apply(v, w)
		lam = matrix.VecDot(v, w)
		if matrix.Normalize(w) == 0 {
			return 0, nil // operator annihilated v: eigenvalue 0 direction
		}
		v, w = w, v
	}
	return lam, nil
}

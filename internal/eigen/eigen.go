package eigen

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/work"
)

// Decomposition is a full symmetric eigendecomposition A = V Λ Vᵀ.
type Decomposition struct {
	// Values holds the eigenvalues in descending order.
	Values []float64
	// Vectors holds the corresponding orthonormal eigenvectors as
	// columns: column j pairs with Values[j].
	Vectors *matrix.Dense
}

// SymEigen computes the full eigendecomposition of the symmetric matrix
// a. a is not modified. Analytic cost: work O(n³), depth O(n log n)
// (the QL sweep is inherently sequential across eigenvalues; the paper
// notes exact decompositions cost Ω(m^ω) work, which is why they appear
// only in reference/verification paths).
func SymEigen(a *matrix.Dense) (*Decomposition, error) {
	dec := &Decomposition{}
	if err := SymEigenInto(nil, a, dec); err != nil {
		return nil, err
	}
	return dec, nil
}

// SymEigenInto computes the eigendecomposition of a into dec, reusing
// dec's storage when the shapes match — the zero-allocation form the
// dense exponential oracle calls every MMW iteration. ws (which may be
// nil) supplies the subdiagonal scratch vector and any storage dec is
// missing; no allocation happens once dec and the workspace are warm.
func SymEigenInto(ws *work.Workspace, a *matrix.Dense, dec *Decomposition) error {
	if err := checkSym(a); err != nil {
		return err
	}
	n := a.R
	if dec.Vectors == nil || dec.Vectors.R != n || dec.Vectors.C != n {
		dec.Vectors = ws.Mat(n, n)
	}
	if len(dec.Values) != n {
		dec.Values = ws.Vec(n)
	}
	dec.Vectors.CopyFrom(a)
	d := dec.Values
	e := ws.Vec(n)
	tred2(dec.Vectors.Data, n, d, e, true)
	err := tqli(d, e, n, dec.Vectors.Data)
	ws.PutVec(e)
	if err != nil {
		return err
	}
	sortDesc(d, dec.Vectors)
	st := statsOf(a)
	st.Add(int64(9)*int64(n)*int64(n)*int64(n), int64(n)*parallel.Log2(n))
	return nil
}

// SymEigenvalues computes only the eigenvalues of the symmetric matrix
// a, in descending order. a is not modified.
func SymEigenvalues(a *matrix.Dense) ([]float64, error) {
	if err := checkSym(a); err != nil {
		return nil, err
	}
	n := a.R
	work := a.Clone()
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(work.Data, n, d, e, false)
	if err := tqli(d, e, n, nil); err != nil {
		return nil, err
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(d)))
	st := statsOf(a)
	st.Add(int64(4)*int64(n)*int64(n)*int64(n), int64(n)*parallel.Log2(n))
	return d, nil
}

// LambdaMax returns the largest eigenvalue of the symmetric matrix a.
func LambdaMax(a *matrix.Dense) (float64, error) {
	vals, err := SymEigenvalues(a)
	if err != nil {
		return 0, err
	}
	return vals[0], nil
}

// LambdaMin returns the smallest eigenvalue of the symmetric matrix a.
func LambdaMin(a *matrix.Dense) (float64, error) {
	vals, err := SymEigenvalues(a)
	if err != nil {
		return 0, err
	}
	return vals[len(vals)-1], nil
}

// IsPSD reports whether symmetric a is positive semidefinite up to a
// small relative tolerance: λ_min(a) >= -tol·max(1, |λ|_max).
func IsPSD(a *matrix.Dense, tol float64) (bool, error) {
	vals, err := SymEigenvalues(a)
	if err != nil {
		return false, err
	}
	scale := 1.0
	for _, v := range vals {
		if av := abs(v); av > scale {
			scale = av
		}
	}
	return vals[len(vals)-1] >= -tol*scale, nil
}

// Apply evaluates f on the spectrum: returns V f(Λ) Vᵀ via the blocked
// symmetric congruence kernel (upper triangle computed, then mirrored).
func (dec *Decomposition) Apply(f func(float64) float64) *matrix.Dense {
	n := len(dec.Values)
	dst := matrix.New(n, n)
	dec.ApplyInto(nil, dst, f)
	return dst
}

// ApplyInto evaluates f on the spectrum into dst (n-by-n), drawing the
// f(Λ) scratch vector from ws. dst must not alias dec.Vectors.
func (dec *Decomposition) ApplyInto(ws *work.Workspace, dst *matrix.Dense, f func(float64) float64) {
	n := len(dec.Values)
	fl := ws.Vec(n)
	for j, lam := range dec.Values {
		fl[j] = f(lam)
	}
	// No stats: Apply is part of composite decomposition pipelines whose
	// analytic cost the drivers record (see the Stats convention).
	matrix.CongruenceDiagInto(dst, dec.Vectors, fl, nil)
	ws.PutVec(fl)
}

// Reconstruct returns V Λ Vᵀ, which should reproduce the input matrix.
func (dec *Decomposition) Reconstruct() *matrix.Dense {
	return dec.Apply(func(x float64) float64 { return x })
}

func checkSym(a *matrix.Dense) error {
	if !a.IsSquare() {
		return fmt.Errorf("eigen: matrix is %dx%d, want square", a.R, a.C)
	}
	if a.HasNaN() {
		return errors.New("eigen: matrix contains NaN or Inf")
	}
	tol := 1e-8 * max(1.0, a.MaxAbs())
	if !a.IsSymmetric(tol) {
		return errors.New("eigen: matrix is not symmetric")
	}
	return nil
}

// sortDesc sorts eigenvalues descending, permuting the columns of z the
// same way (selection sort mirrors the classical eigsrt).
func sortDesc(d []float64, z *matrix.Dense) {
	n := len(d)
	for i := 0; i < n-1; i++ {
		k := i
		p := d[i]
		for j := i + 1; j < n; j++ {
			if d[j] > p {
				k = j
				p = d[j]
			}
		}
		if k != i {
			d[k] = d[i]
			d[i] = p
			for r := 0; r < n; r++ {
				z.Data[r*n+i], z.Data[r*n+k] = z.Data[r*n+k], z.Data[r*n+i]
			}
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// stats hook: package-level recorder that callers may set to account
// eigendecomposition work; nil disables. The solver wires its Stats in
// via SetStats around timed sections (single-threaded configuration
// phase), and experiments read it back out.
var pkgStats *parallel.Stats

// SetStats installs st as the work/depth recorder for this package's
// decompositions. Pass nil to disable. Not safe to call concurrently
// with decompositions.
func SetStats(st *parallel.Stats) { pkgStats = st }

func statsOf(_ *matrix.Dense) *parallel.Stats { return pkgStats }

package eigen

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func randSym(n int, rng *rand.Rand) *matrix.Dense {
	m := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.Float64()*2 - 1
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// randPSD builds G Gᵀ with G n-by-r, a PSD matrix of rank <= r.
func randPSD(n, r int, rng *rand.Rand) *matrix.Dense {
	g := matrix.New(n, r)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	return matrix.MulABT(g, g, nil)
}

func TestSymEigenDiagonal(t *testing.T) {
	a := matrix.Diag([]float64{3, 1, 2})
	dec, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i, v := range want {
		if math.Abs(dec.Values[i]-v) > 1e-12 {
			t.Fatalf("values = %v want %v", dec.Values, want)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := matrix.FromRows([][]float64{{2, 1}, {1, 2}})
	dec, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dec.Values[0]-3) > 1e-12 || math.Abs(dec.Values[1]-1) > 1e-12 {
		t.Fatalf("values = %v want [3 1]", dec.Values)
	}
	// Eigenvector for 3 is (1,1)/√2 up to sign.
	v0 := dec.Vectors.Col(0)
	if math.Abs(math.Abs(v0[0])-1/math.Sqrt2) > 1e-12 || math.Abs(v0[0]-v0[1]) > 1e-12 {
		t.Fatalf("top eigenvector = %v", v0)
	}
}

func TestSymEigen1x1(t *testing.T) {
	a := matrix.FromRows([][]float64{{7}})
	dec, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Values[0] != 7 || math.Abs(math.Abs(dec.Vectors.At(0, 0))-1) > 1e-15 {
		t.Fatalf("1x1 decomposition wrong: %v %v", dec.Values, dec.Vectors)
	}
}

func TestSymEigenReconstruct(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 20))
	for _, n := range []int{2, 3, 5, 8, 16, 33} {
		a := randSym(n, rng)
		dec, err := SymEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		rec := dec.Reconstruct()
		if !matrix.ApproxEqual(rec, a, 1e-9*float64(n)) {
			t.Fatalf("n=%d: reconstruction error %g", n, errNorm(rec, a))
		}
	}
}

func TestSymEigenOrthonormalVectors(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 21))
	a := randSym(12, rng)
	dec, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	vtv := matrix.MulATB(dec.Vectors, dec.Vectors, nil)
	if !matrix.ApproxEqual(vtv, matrix.Identity(12), 1e-10) {
		t.Fatal("eigenvectors not orthonormal")
	}
}

func TestSymEigenResidualPerPair(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 22))
	a := randSym(9, rng)
	dec, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 9; j++ {
		v := dec.Vectors.Col(j)
		av := a.MulVec(v)
		for i := range av {
			if math.Abs(av[i]-dec.Values[j]*v[i]) > 1e-9 {
				t.Fatalf("pair %d: |Av - λv| too large", j)
			}
		}
	}
}

func TestValuesOnlyMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 23))
	for _, n := range []int{1, 2, 3, 7, 20} {
		a := randSym(n, rng)
		dec, err := SymEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		vals, err := SymEigenvalues(a)
		if err != nil {
			t.Fatal(err)
		}
		for i := range vals {
			if math.Abs(vals[i]-dec.Values[i]) > 1e-9 {
				t.Fatalf("n=%d: values-only %v != full %v", n, vals, dec.Values)
			}
		}
	}
}

func TestTraceEqualsSumOfEigenvalues(t *testing.T) {
	rng := rand.New(rand.NewPCG(14, 24))
	a := randSym(15, rng)
	vals, err := SymEigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	if math.Abs(sum-a.Trace()) > 1e-9 {
		t.Fatalf("Σλ = %v, Tr = %v", sum, a.Trace())
	}
}

func TestLambdaMaxMinPSD(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 25))
	a := randPSD(10, 4, rng) // rank <= 4, so λ_min = 0
	lmax, err := LambdaMax(a)
	if err != nil {
		t.Fatal(err)
	}
	lmin, err := LambdaMin(a)
	if err != nil {
		t.Fatal(err)
	}
	if lmax <= 0 {
		t.Fatalf("λmax = %v should be positive", lmax)
	}
	if math.Abs(lmin) > 1e-9*lmax {
		t.Fatalf("λmin = %v should be ~0 for rank-deficient PSD", lmin)
	}
	ok, err := IsPSD(a, 1e-9)
	if err != nil || !ok {
		t.Fatalf("IsPSD = %v, %v", ok, err)
	}
	neg := a.Clone()
	matrix.AddScaledIdentity(neg, -0.1*lmax)
	ok, err = IsPSD(neg, 1e-9)
	if err != nil || ok {
		t.Fatalf("shifted matrix should not be PSD")
	}
}

func TestApplyExpConsistency(t *testing.T) {
	// Apply(exp) on a diagonal matrix is exp of the diagonal.
	a := matrix.Diag([]float64{0, 1, -1})
	dec, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	e := dec.Apply(math.Exp)
	want := matrix.Diag([]float64{1, math.E, 1 / math.E})
	if !matrix.ApproxEqual(e, want, 1e-12) {
		t.Fatalf("Apply(exp) = %v want %v", e, want)
	}
}

func TestSymEigenRejectsBadInput(t *testing.T) {
	if _, err := SymEigen(matrix.New(2, 3)); err == nil {
		t.Fatal("rectangular input accepted")
	}
	asym := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := SymEigen(asym); err == nil {
		t.Fatal("asymmetric input accepted")
	}
	nan := matrix.Identity(2)
	nan.Set(0, 0, math.NaN())
	if _, err := SymEigen(nan); err == nil {
		t.Fatal("NaN input accepted")
	}
}

func TestQuickEigenvaluesMatchCharPoly2x2(t *testing.T) {
	f := func(a, b, c float64) bool {
		if math.Abs(a) > 1e6 || math.Abs(b) > 1e6 || math.Abs(c) > 1e6 {
			return true
		}
		m := matrix.FromRows([][]float64{{a, b}, {b, c}})
		vals, err := SymEigenvalues(m)
		if err != nil {
			return false
		}
		// λ = (a+c)/2 ± sqrt(((a-c)/2)² + b²)
		mid := (a + c) / 2
		rad := math.Hypot((a-c)/2, b)
		scale := math.Max(1, math.Abs(a)+math.Abs(b)+math.Abs(c))
		return math.Abs(vals[0]-(mid+rad)) < 1e-9*scale &&
			math.Abs(vals[1]-(mid-rad)) < 1e-9*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickShiftInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := 2 + int(seed%6)
		a := randSym(n, rng)
		shift := rng.Float64()*10 - 5
		vals1, err := SymEigenvalues(a)
		if err != nil {
			return false
		}
		b := a.Clone()
		matrix.AddScaledIdentity(b, shift)
		vals2, err := SymEigenvalues(b)
		if err != nil {
			return false
		}
		for i := range vals1 {
			if math.Abs(vals2[i]-(vals1[i]+shift)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedEigenvalues(t *testing.T) {
	// I + rank-1: eigenvalues {1+n·s, 1, 1, ..., 1} for vvᵀ with unit v scaled.
	n := 6
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(n))
	}
	a := matrix.OuterProduct(2, v)
	matrix.AddScaledIdentity(a, 1)
	vals, err := SymEigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	if math.Abs(vals[0]-3) > 1e-10 {
		t.Fatalf("top value = %v want 3", vals[0])
	}
	for _, v := range vals[1:] {
		if math.Abs(v-1) > 1e-10 {
			t.Fatalf("repeated value = %v want 1", v)
		}
	}
}

func errNorm(a, b *matrix.Dense) float64 {
	d := matrix.New(a.R, a.C)
	matrix.Sub(d, a, b)
	return d.MaxAbs()
}

package eigen

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/matrix"
)

func denseApply(a *matrix.Dense) func(in, out []float64) {
	return func(in, out []float64) { a.MulVecTo(out, in) }
}

func TestLanczosMaxMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(100, 200))
	for _, n := range []int{1, 2, 5, 20, 60} {
		a := randPSD(n, n, rng)
		want, err := LambdaMax(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := LanczosMax(denseApply(a), n, LanczosOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-7*math.Max(1, want) {
			t.Fatalf("n=%d: Lanczos %v vs dense %v", n, got, want)
		}
	}
}

func TestLanczosMaxRankOne(t *testing.T) {
	// λmax(vvᵀ) = |v|².
	n := 30
	rng := rand.New(rand.NewPCG(7, 8))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	norm2 := matrix.VecDot(v, v)
	apply := func(in, out []float64) {
		s := matrix.VecDot(v, in)
		for i := range out {
			out[i] = s * v[i]
		}
	}
	got, err := LanczosMax(apply, n, LanczosOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-norm2) > 1e-8*norm2 {
		t.Fatalf("rank-1 λmax = %v want %v", got, norm2)
	}
}

func TestLanczosMaxIdentity(t *testing.T) {
	apply := func(in, out []float64) { copy(out, in) }
	got, err := LanczosMax(apply, 17, LanczosOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-10 {
		t.Fatalf("λmax(I) = %v want 1", got)
	}
}

func TestLanczosMaxZeroOperator(t *testing.T) {
	apply := func(in, out []float64) {
		for i := range out {
			out[i] = 0
		}
	}
	got, err := LanczosMax(apply, 9, LanczosOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got) > 1e-12 {
		t.Fatalf("λmax(0) = %v want 0", got)
	}
}

func TestLanczosMaxBadDim(t *testing.T) {
	if _, err := LanczosMax(nil, 0, LanczosOpts{}); err == nil {
		t.Fatal("dim=0 accepted")
	}
}

func TestPowerMaxAgrees(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	a := randPSD(15, 15, rng)
	want, err := LambdaMax(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PowerMax(denseApply(a), 15, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-4*want {
		t.Fatalf("PowerMax %v vs dense %v", got, want)
	}
}

func TestLanczosDeterministicDefaultSeed(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	a := randPSD(25, 25, rng)
	g1, err := LanczosMax(denseApply(a), 25, LanczosOpts{})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := LanczosMax(denseApply(a), 25, LanczosOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatalf("nondeterministic Lanczos: %v vs %v", g1, g2)
	}
}

// Cross-GOMAXPROCS determinism harness: the repo guarantees that every
// solver result — traces, witnesses, certified bounds — is bit-for-bit
// identical at any GOMAXPROCS, because all parallel reductions use
// fixed block trees (see internal/parallel). These tests run the public
// Decision/Maximize entry points on small seeded instances at
// GOMAXPROCS=1 and GOMAXPROCS=8 and compare everything bitwise.
package psdp_test

import (
	"math"
	"math/rand/v2"
	"runtime"
	"testing"

	psdp "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

// runTrace captures the full per-iteration telemetry of a run.
type runTrace struct {
	iters []psdp.IterationInfo
}

func traceOpts(seed uint64, tr *runTrace) psdp.Options {
	return psdp.Options{
		Seed: seed,
		OnIteration: func(info psdp.IterationInfo) bool {
			tr.iters = append(tr.iters, info)
			return true
		},
	}
}

func sameBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func sameVec(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if !sameBits(a[i], b[i]) {
			t.Fatalf("%s[%d]: %v vs %v (bitwise mismatch)", name, i, a[i], b[i])
		}
	}
}

func sameTrace(t *testing.T, name string, a, b runTrace) {
	t.Helper()
	if len(a.iters) != len(b.iters) {
		t.Fatalf("%s: %d iterations vs %d", name, len(a.iters), len(b.iters))
	}
	for i := range a.iters {
		x, y := a.iters[i], b.iters[i]
		if x.T != y.T || x.Updated != y.Updated ||
			!sameBits(x.XNorm1, y.XNorm1) || !sameBits(x.LambdaMax, y.LambdaMax) ||
			!sameBits(x.MinRatio, y.MinRatio) || !sameBits(x.MaxRatio, y.MaxRatio) {
			t.Fatalf("%s: iteration %d differs: %+v vs %+v", name, i, x, y)
		}
	}
}

func sameDecision(t *testing.T, name string, a, b *psdp.DecisionResult) {
	t.Helper()
	if a.Outcome != b.Outcome || a.Iterations != b.Iterations {
		t.Fatalf("%s: outcome/iterations differ: %v/%d vs %v/%d",
			name, a.Outcome, a.Iterations, b.Outcome, b.Iterations)
	}
	if !sameBits(a.Lower, b.Lower) || !sameBits(a.Upper, b.Upper) ||
		!sameBits(a.LambdaMaxPsi, b.LambdaMaxPsi) || !sameBits(a.MaxPsiNorm, b.MaxPsiNorm) {
		t.Fatalf("%s: certified bounds differ: [%v, %v] λ=%v vs [%v, %v] λ=%v",
			name, a.Lower, a.Upper, a.LambdaMaxPsi, b.Lower, b.Upper, b.LambdaMaxPsi)
	}
	sameVec(t, name+".X", a.X, b.X)
	sameVec(t, name+".DualX", a.DualX, b.DualX)
	sameVec(t, name+".AvgRatios", a.AvgRatios, b.AvgRatios)
}

// atGOMAXPROCS runs f under the given GOMAXPROCS setting.
func atGOMAXPROCS(p int, f func()) {
	orig := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(orig)
	f()
}

func TestDecisionDeterministicAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	inst, err := gen.OrthogonalRankOne(10, 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	set, err := psdp.NewDenseSet(inst.A)
	if err != nil {
		t.Fatal(err)
	}
	scaled := set.WithScale(inst.OPT)

	run := func() (*psdp.DecisionResult, runTrace) {
		var tr runTrace
		dr, err := psdp.Decision(scaled, 0.2, traceOpts(5, &tr))
		if err != nil {
			t.Fatal(err)
		}
		return dr, tr
	}
	var dr1, dr8 *psdp.DecisionResult
	var tr1, tr8 runTrace
	atGOMAXPROCS(1, func() { dr1, tr1 = run() })
	atGOMAXPROCS(8, func() { dr8, tr8 = run() })

	sameTrace(t, "dense trace", tr1, tr8)
	sameDecision(t, "dense decision", dr1, dr8)
}

func TestDecisionFactoredJLDeterministicAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	inst, err := gen.RandomFactored(12, 24, 2, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	fset, err := psdp.NewFactoredSet(inst.Q)
	if err != nil {
		t.Fatal(err)
	}
	minTr := math.Inf(1)
	for i := 0; i < fset.N(); i++ {
		if tr := fset.Trace(i); tr < minTr {
			minTr = tr
		}
	}
	scaled := fset.WithScale(2 / minTr)

	run := func() (*psdp.DecisionResult, runTrace) {
		var tr runTrace
		opts := traceOpts(7, &tr)
		opts.SketchEps = 0.3
		dr, err := psdp.Decision(scaled, 0.25, opts)
		if err != nil {
			t.Fatal(err)
		}
		return dr, tr
	}
	var dr1, dr8 *psdp.DecisionResult
	var tr1, tr8 runTrace
	atGOMAXPROCS(1, func() { dr1, tr1 = run() })
	atGOMAXPROCS(8, func() { dr8, tr8 = run() })

	sameTrace(t, "factored trace", tr1, tr8)
	sameDecision(t, "factored decision", dr1, dr8)
}

// sparseCycleSet builds the edge-Laplacian packing instance of a cycle
// in the general-sparse representation.
func sparseCycleSet(t *testing.T, n int) *psdp.SparseSet {
	t.Helper()
	g := graph.Cycle(n)
	inst, err := gen.SparseEdgePacking(g)
	if err != nil {
		t.Fatal(err)
	}
	set, err := psdp.NewSparseSet(inst.A)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestDecisionSparseJLDeterministicAcrossGOMAXPROCS(t *testing.T) {
	set := sparseCycleSet(t, 16)
	scaled := set.WithScale(0.2)
	run := func() (*psdp.DecisionResult, runTrace) {
		var tr runTrace
		opts := traceOpts(17, &tr)
		opts.SketchEps = 0.4
		opts.MaxIter = 60
		dr, err := psdp.Decision(scaled, 0.25, opts)
		if err != nil {
			t.Fatal(err)
		}
		return dr, tr
	}
	var dr1, dr8 *psdp.DecisionResult
	var tr1, tr8 runTrace
	atGOMAXPROCS(1, func() { dr1, tr1 = run() })
	atGOMAXPROCS(8, func() { dr8, tr8 = run() })

	sameTrace(t, "sparse-jl trace", tr1, tr8)
	sameDecision(t, "sparse-jl decision", dr1, dr8)
}

func TestDecisionSparseExactDeterministicAcrossGOMAXPROCS(t *testing.T) {
	set := sparseCycleSet(t, 12)
	scaled := set.WithScale(0.25)
	run := func() (*psdp.DecisionResult, runTrace) {
		var tr runTrace
		opts := traceOpts(19, &tr)
		opts.Oracle = psdp.OracleFactoredExact
		opts.MaxIter = 80
		dr, err := psdp.Decision(scaled, 0.25, opts)
		if err != nil {
			t.Fatal(err)
		}
		return dr, tr
	}
	var dr1, dr8 *psdp.DecisionResult
	var tr1, tr8 runTrace
	atGOMAXPROCS(1, func() { dr1, tr1 = run() })
	atGOMAXPROCS(8, func() { dr8, tr8 = run() })

	sameTrace(t, "sparse-exact trace", tr1, tr8)
	sameDecision(t, "sparse-exact decision", dr1, dr8)
}

func TestMaximizeSparseDeterministicAcrossGOMAXPROCS(t *testing.T) {
	set := sparseCycleSet(t, 10)
	run := func() *psdp.Solution {
		sol, err := psdp.Maximize(set, 0.25, psdp.Options{Seed: 29, SketchEps: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	var s1, s8 *psdp.Solution
	atGOMAXPROCS(1, func() { s1 = run() })
	atGOMAXPROCS(8, func() { s8 = run() })

	if !sameBits(s1.Lower, s8.Lower) || !sameBits(s1.Upper, s8.Upper) {
		t.Fatalf("sparse Maximize bounds differ: [%v, %v] vs [%v, %v]",
			s1.Lower, s1.Upper, s8.Lower, s8.Upper)
	}
	sameVec(t, "sparse Maximize.X", s1.X, s8.X)
}

func TestMaximizeDeterministicAcrossGOMAXPROCS(t *testing.T) {
	set, err := psdp.NewDenseSet([]*psdp.Dense{
		psdp.Diag([]float64{0.5, 0.25, 0.1}),
		psdp.Diag([]float64{0.25, 0.5, 0.3}),
		psdp.MatrixFromRows([][]float64{{0.2, 0.1, 0}, {0.1, 0.3, 0.05}, {0, 0.05, 0.4}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func() *psdp.Solution {
		sol, err := psdp.Maximize(set, 0.15, psdp.Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	var s1, s8 *psdp.Solution
	atGOMAXPROCS(1, func() { s1 = run() })
	atGOMAXPROCS(8, func() { s8 = run() })

	if !sameBits(s1.Lower, s8.Lower) || !sameBits(s1.Upper, s8.Upper) {
		t.Fatalf("Maximize bounds differ: [%v, %v] vs [%v, %v]",
			s1.Lower, s1.Upper, s8.Lower, s8.Upper)
	}
	sameVec(t, "Maximize.X", s1.X, s8.X)
}

func sameMixed(t *testing.T, name string, a, b *psdp.MixedResult) {
	t.Helper()
	if a.Status != b.Status || a.Iterations != b.Iterations || a.Capped != b.Capped || a.Engine != b.Engine {
		t.Fatalf("%s: status/iterations/capped/engine differ: %v/%d/%d/%s vs %v/%d/%d/%s",
			name, a.Status, a.Iterations, a.Capped, a.Engine, b.Status, b.Iterations, b.Capped, b.Engine)
	}
	if !sameBits(a.MinCoverage, b.MinCoverage) || !sameBits(a.LambdaMax, b.LambdaMax) {
		t.Fatalf("%s: verified quantities differ: cov %v λ %v vs cov %v λ %v",
			name, a.MinCoverage, a.LambdaMax, b.MinCoverage, b.LambdaMax)
	}
	sameVec(t, name+".X", a.X, b.X)
}

func TestSolveMixedDeterministicAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 92))
	inst, err := gen.MixedCoveringLP(8, 10, 4, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	pack, err := psdp.NewDenseSet(inst.A)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := psdp.NewMixedProblem(pack, inst.C)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []psdp.EngineKind{psdp.EngineMMW, psdp.EngineALO} {
		run := func() *psdp.MixedResult {
			mr, err := psdp.SolveMixed(mp, 0.15, psdp.MixedOptions{Seed: 41, Engine: eng})
			if err != nil {
				t.Fatal(err)
			}
			return mr
		}
		var m1, m8 *psdp.MixedResult
		atGOMAXPROCS(1, func() { m1 = run() })
		atGOMAXPROCS(8, func() { m8 = run() })
		sameMixed(t, "mixed-"+eng.String(), m1, m8)
	}
}

func TestSolveMixedSparseDeterministicAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewPCG(95, 96))
	g := graph.ErdosRenyi(16, 6.0/16, rng)
	inst, err := gen.MixedGraphCovering(g, 6, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	pack, err := psdp.NewSparseSet(inst.A)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := psdp.NewMixedProblem(pack, inst.C)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *psdp.MixedResult {
		mr, err := psdp.SolveMixed(mp, 0.2, psdp.MixedOptions{Seed: 43})
		if err != nil {
			t.Fatal(err)
		}
		return mr
	}
	var m1, m8 *psdp.MixedResult
	atGOMAXPROCS(1, func() { m1 = run() })
	atGOMAXPROCS(8, func() { m8 = run() })
	sameMixed(t, "mixed-sparse", m1, m8)
}
